//! Crash-safe checkpoint/restore for the simulation engine.
//!
//! A checkpoint is a versioned, self-describing snapshot of the
//! *entire* deterministic state of a [`crate::Simulation`] — cluster
//! SoA vectors, VM table, the calendar queue, every seeded RNG stream,
//! in-flight control-plane exchanges, fault schedules, statistics and
//! streaming series. Because the engine is a pure function of
//! `(Fleet, Workload, SimConfig, policy seed)` and all of its mutable
//! state, restoring a snapshot and continuing produces **byte-identical**
//! results to the uninterrupted run; `Simulation::restore_from`
//! debug-asserts this with a round-trip oracle (re-snapshot the
//! restored engine, diff every section).
//!
//! # File format
//!
//! Little-endian throughout:
//!
//! ```text
//! magic            8 B   b"ECOCKPT1"
//! format version   u32   bumped on any layout change
//! total length     u64   length of the whole file, trailer included
//! crate version    str   (u32 len + UTF-8 bytes)
//! spec             str   caller-supplied run identity (RunSpec canonical)
//! sequence number  u64   monotonic per run; later snapshot = larger seq
//! sim time         f64   simulated seconds at capture (raw bits)
//! section count    u32
//!   per section:   name str, u32 byte length, payload bytes
//! checksum         u64   FNV-1a over everything above
//! ```
//!
//! The total-length field makes torn writes (truncation at any byte)
//! detectable without parsing; the checksum catches bit rot and
//! interior corruption. Scalars use fixed-width little-endian encoding
//! and floats round-trip through `to_bits`/`from_bits`, so a value is
//! restored to the exact bit pattern that was captured — the
//! foundation of the byte-identical resume guarantee.
//!
//! # Crash safety
//!
//! [`Checkpoint::write_atomic`] never leaves a path without a valid
//! snapshot: the new file is written to `<path>.tmp`, fsynced, and
//! renamed over `<path>` only after the previous `<path>` has been
//! rotated to `<path>.prev`. A reader that finds `<path>` torn or
//! corrupt ([`Checkpoint::read_with_fallback`]) falls back to
//! `<path>.prev` — the last good snapshot — and only then gives up.
//! Version or spec mismatches are *hard* errors with no fallback: a
//! stale-but-valid snapshot from the wrong run must never silently
//! seed a resume.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// On-disk magic. The trailing `1` doubles as a human-visible layout
/// generation; [`FORMAT_VERSION`] is the machine-checked one.
const MAGIC: &[u8; 8] = b"ECOCKPT1";

/// Bumped whenever the byte layout of any section changes.
const FORMAT_VERSION: u32 = 1;

/// Version of the code that wrote a snapshot. Restoring across crate
/// versions is refused: state layout is an internal detail and the
/// byte-identical guarantee only holds within one build lineage.
pub const CRATE_VERSION: &str = match option_env!("CARGO_PKG_VERSION") {
    Some(v) => v,
    None => "0.1.0",
};

/// Why a snapshot could not be written, read, or restored.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    /// Filesystem error; carries the path and the OS error text.
    Io(String),
    /// The file is shorter than its recorded length (torn write).
    Truncated(String),
    /// The file does not start with the checkpoint magic.
    BadMagic(String),
    /// The checksum trailer does not match the content.
    BadChecksum(String),
    /// The snapshot was written under a different byte layout.
    FormatVersionMismatch {
        /// Version found in the file.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
    /// The snapshot was written by a different crate version.
    CrateVersionMismatch {
        /// Version recorded in the snapshot.
        found: String,
        /// Version of this build.
        expected: String,
    },
    /// The snapshot belongs to a different run (spec string differs).
    SpecMismatch {
        /// Spec recorded in the snapshot.
        found: String,
        /// Spec of the run attempting to resume.
        expected: String,
    },
    /// The envelope was intact (magic, length, checksum) but a section
    /// failed to decode — a layout bug, not a torn write.
    Corrupt(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(msg) => write!(f, "checkpoint I/O error: {msg}"),
            Self::Truncated(msg) => write!(f, "checkpoint truncated: {msg}"),
            Self::BadMagic(msg) => write!(f, "not a checkpoint file: {msg}"),
            Self::BadChecksum(msg) => write!(f, "checkpoint checksum mismatch: {msg}"),
            Self::FormatVersionMismatch { found, expected } => write!(
                f,
                "checkpoint format version {found} is not the supported version {expected}"
            ),
            Self::CrateVersionMismatch { found, expected } => write!(
                f,
                "checkpoint was written by crate version {found}, this build is {expected}"
            ),
            Self::SpecMismatch { found, expected } => write!(
                f,
                "checkpoint belongs to a different run:\n  snapshot spec: {found}\n  resume spec:   {expected}"
            ),
            Self::Corrupt(msg) => write!(f, "checkpoint corrupt: {msg}"),
        }
    }
}

impl CheckpointError {
    /// True for errors a fallback snapshot can repair (torn or rotted
    /// files). Version and spec mismatches are not recoverable: an
    /// older snapshot of the wrong run is still the wrong run.
    fn recoverable(&self) -> bool {
        matches!(
            self,
            Self::Io(_) | Self::Truncated(_) | Self::BadMagic(_) | Self::BadChecksum(_)
        )
    }
}

/// 64-bit FNV-1a over `bytes` — the same hash the sweep cache keys use,
/// chosen for the same reason: dependency-free and deterministic.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------- codec

/// Byte encoder: fixed-width little-endian scalars, floats as raw bits.
#[derive(Debug, Default)]
pub(crate) struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub(crate) fn u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    pub(crate) fn bool(&mut self, x: bool) {
        self.buf.push(x as u8);
    }

    pub(crate) fn u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    pub(crate) fn usize(&mut self, x: usize) {
        self.u64(x as u64);
    }

    pub(crate) fn f64(&mut self, x: f64) {
        self.u64(x.to_bits());
    }

    pub(crate) fn f32(&mut self, x: f32) {
        self.u32(x.to_bits());
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub(crate) fn opt_f64(&mut self, x: Option<f64>) {
        match x {
            Some(v) => {
                self.bool(true);
                self.f64(v);
            }
            None => self.bool(false),
        }
    }

    pub(crate) fn f64s(&mut self, xs: &[f64]) {
        self.usize(xs.len());
        for &x in xs {
            self.f64(x);
        }
    }

    pub(crate) fn u64s(&mut self, xs: &[u64]) {
        self.usize(xs.len());
        for &x in xs {
            self.u64(x);
        }
    }

    pub(crate) fn u32s(&mut self, xs: &[u32]) {
        self.usize(xs.len());
        for &x in xs {
            self.u32(x);
        }
    }
}

/// Byte decoder matching [`Enc`]. Every read is bounds-checked; running
/// past the end of a section yields [`CheckpointError::Corrupt`] (the
/// envelope's length + checksum have already ruled out torn files).
#[derive(Debug)]
pub(crate) struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Section name, for error context.
    what: &'a str,
}

impl<'a> Dec<'a> {
    pub(crate) fn new(buf: &'a [u8], what: &'a str) -> Self {
        Self { buf, pos: 0, what }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.pos + n > self.buf.len() {
            return Err(CheckpointError::Corrupt(format!(
                "section '{}' ended early (wanted {} bytes at offset {}, have {})",
                self.what,
                n,
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn bool(&mut self) -> Result<bool, CheckpointError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CheckpointError::Corrupt(format!(
                "section '{}': invalid bool byte {other}",
                self.what
            ))),
        }
    }

    pub(crate) fn u32(&mut self) -> Result<u32, CheckpointError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, CheckpointError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub(crate) fn usize(&mut self) -> Result<usize, CheckpointError> {
        let x = self.u64()?;
        usize::try_from(x).map_err(|_| {
            CheckpointError::Corrupt(format!(
                "section '{}': length {x} exceeds the address space",
                self.what
            ))
        })
    }

    pub(crate) fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn f32(&mut self) -> Result<f32, CheckpointError> {
        Ok(f32::from_bits(self.u32()?))
    }

    pub(crate) fn str(&mut self) -> Result<String, CheckpointError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| {
            CheckpointError::Corrupt(format!("section '{}': non-UTF-8 string", self.what))
        })
    }

    pub(crate) fn opt_f64(&mut self) -> Result<Option<f64>, CheckpointError> {
        Ok(if self.bool()? {
            Some(self.f64()?)
        } else {
            None
        })
    }

    pub(crate) fn f64s(&mut self) -> Result<Vec<f64>, CheckpointError> {
        let n = self.usize()?;
        self.check_remaining(n, 8)?;
        (0..n).map(|_| self.f64()).collect()
    }

    pub(crate) fn u64s(&mut self) -> Result<Vec<u64>, CheckpointError> {
        let n = self.usize()?;
        self.check_remaining(n, 8)?;
        (0..n).map(|_| self.u64()).collect()
    }

    pub(crate) fn u32s(&mut self) -> Result<Vec<u32>, CheckpointError> {
        let n = self.usize()?;
        self.check_remaining(n, 4)?;
        (0..n).map(|_| self.u32()).collect()
    }

    /// Guards `Vec::with_capacity`-style allocations against absurd
    /// lengths decoded from a corrupt section.
    pub(crate) fn check_remaining(&self, n: usize, elem: usize) -> Result<(), CheckpointError> {
        let have = self.buf.len() - self.pos;
        if n.checked_mul(elem).is_none_or(|need| need > have) {
            return Err(CheckpointError::Corrupt(format!(
                "section '{}': claims {n} elements of at least {elem} B but only {have} B remain",
                self.what
            )));
        }
        Ok(())
    }

    /// Asserts the section was consumed exactly — trailing bytes mean
    /// the writer and reader disagree about the layout.
    pub(crate) fn finish(self) -> Result<(), CheckpointError> {
        if self.pos != self.buf.len() {
            return Err(CheckpointError::Corrupt(format!(
                "section '{}' has {} undecoded trailing bytes",
                self.what,
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ----------------------------------------------------------- container

/// A complete snapshot: identity header plus named state sections.
///
/// Sections are opaque byte strings produced by the per-module
/// encoders; naming them lets the restore oracle report *which* part
/// of the state diverged instead of a bare "bytes differ".
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Canonical run identity (e.g. `RunSpec::canonical()`); resuming
    /// under a different spec is refused.
    pub spec: String,
    /// Crate version that wrote the snapshot.
    pub crate_version: String,
    /// Monotonic sequence number within a run; later snapshots carry
    /// larger numbers, so a stale file can never masquerade as newer.
    pub seq: u64,
    /// Simulated time at capture, seconds.
    pub sim_time_secs: f64,
    sections: Vec<(String, Vec<u8>)>,
}

impl Checkpoint {
    /// Creates an empty snapshot envelope stamped with this build's
    /// crate version.
    pub fn new(spec: impl Into<String>, seq: u64, sim_time_secs: f64) -> Self {
        Self {
            spec: spec.into(),
            crate_version: CRATE_VERSION.to_string(),
            seq,
            sim_time_secs,
            sections: Vec::new(),
        }
    }

    /// Appends a named state section.
    pub(crate) fn push_section(&mut self, name: &str, bytes: Vec<u8>) {
        debug_assert!(
            !self.sections.iter().any(|(n, _)| n == name),
            "duplicate checkpoint section '{name}'"
        );
        self.sections.push((name.to_string(), bytes));
    }

    /// Looks up a section's payload by name.
    pub(crate) fn section(&self, name: &str) -> Result<&[u8], CheckpointError> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b.as_slice())
            .ok_or_else(|| CheckpointError::Corrupt(format!("missing section '{name}'")))
    }

    /// `(name, payload)` pairs in written order — the restore oracle
    /// diffs these.
    pub fn sections(&self) -> &[(String, Vec<u8>)] {
        &self.sections
    }

    /// Name of the first section whose payload differs from `other`'s
    /// (or that exists on only one side); `None` when identical.
    pub fn first_divergent_section(&self, other: &Checkpoint) -> Option<String> {
        let n = self.sections.len().max(other.sections.len());
        for i in 0..n {
            match (self.sections.get(i), other.sections.get(i)) {
                (Some((na, ba)), Some((nb, bb))) => {
                    if na != nb || ba != bb {
                        return Some(na.clone());
                    }
                }
                (Some((na, _)), None) | (None, Some((na, _))) => return Some(na.clone()),
                (None, None) => unreachable!("i < max(len, len)"),
            }
        }
        None
    }

    /// Hard compatibility gate: crate version and run spec must match
    /// exactly. Called by `Simulation::restore_from`; also useful for
    /// pre-flight checks before building the (expensive) scenario.
    pub fn verify_compat(&self, spec: &str) -> Result<(), CheckpointError> {
        if self.crate_version != CRATE_VERSION {
            return Err(CheckpointError::CrateVersionMismatch {
                found: self.crate_version.clone(),
                expected: CRATE_VERSION.to_string(),
            });
        }
        if self.spec != spec {
            return Err(CheckpointError::SpecMismatch {
                found: self.spec.clone(),
                expected: spec.to_string(),
            });
        }
        Ok(())
    }

    /// Serializes the snapshot to its on-disk byte form (header,
    /// sections, checksum trailer).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.buf.extend_from_slice(MAGIC);
        e.u32(FORMAT_VERSION);
        e.u64(0); // total length backpatched below
        e.str(&self.crate_version);
        e.str(&self.spec);
        e.u64(self.seq);
        e.f64(self.sim_time_secs);
        e.u32(self.sections.len() as u32);
        for (name, bytes) in &self.sections {
            e.str(name);
            e.u32(bytes.len() as u32);
            e.buf.extend_from_slice(bytes);
        }
        let total = (e.buf.len() + 8) as u64;
        e.buf[12..20].copy_from_slice(&total.to_le_bytes());
        let sum = fnv1a(&e.buf);
        e.u64(sum);
        e.into_bytes()
    }

    /// Parses the on-disk byte form. `origin` names the source (a path)
    /// in errors.
    pub fn from_bytes(bytes: &[u8], origin: &str) -> Result<Self, CheckpointError> {
        // Envelope: magic, format version, recorded length, checksum.
        if bytes.len() < MAGIC.len() {
            return Err(CheckpointError::Truncated(format!(
                "{origin}: {} bytes is shorter than the magic",
                bytes.len()
            )));
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(CheckpointError::BadMagic(origin.to_string()));
        }
        if bytes.len() < 20 + 8 {
            return Err(CheckpointError::Truncated(format!(
                "{origin}: {} bytes is shorter than the fixed header",
                bytes.len()
            )));
        }
        let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
        if version != FORMAT_VERSION {
            return Err(CheckpointError::FormatVersionMismatch {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        let total = u64::from_le_bytes([
            bytes[12], bytes[13], bytes[14], bytes[15], bytes[16], bytes[17], bytes[18], bytes[19],
        ]);
        if total != bytes.len() as u64 {
            return Err(CheckpointError::Truncated(format!(
                "{origin}: file is {} bytes but records {total}",
                bytes.len()
            )));
        }
        let body = &bytes[..bytes.len() - 8];
        let trailer = &bytes[bytes.len() - 8..];
        let sum = u64::from_le_bytes([
            trailer[0], trailer[1], trailer[2], trailer[3], trailer[4], trailer[5], trailer[6],
            trailer[7],
        ]);
        if fnv1a(body) != sum {
            return Err(CheckpointError::BadChecksum(origin.to_string()));
        }
        // Body decodes with the shared codec past the fixed fields.
        let mut d = Dec::new(&body[20..], "header");
        let crate_version = d.str()?;
        let spec = d.str()?;
        let seq = d.u64()?;
        let sim_time_secs = d.f64()?;
        let n_sections = d.u32()? as usize;
        let mut sections = Vec::with_capacity(n_sections.min(64));
        for _ in 0..n_sections {
            let name = d.str()?;
            let len = d.u32()? as usize;
            let payload = d.take(len)?.to_vec();
            sections.push((name, payload));
        }
        d.finish()?;
        Ok(Self {
            spec,
            crate_version,
            seq,
            sim_time_secs,
            sections,
        })
    }

    /// Writes the snapshot crash-safely to `path`:
    ///
    /// 1. serialize to `<path>.tmp` and fsync the file,
    /// 2. rotate any existing `<path>` to `<path>.prev` (the fallback
    ///    [`read_with_fallback`](Self::read_with_fallback) uses),
    /// 3. atomically rename `<path>.tmp` → `<path>`,
    /// 4. best-effort fsync of the parent directory so the renames
    ///    survive power loss.
    ///
    /// A crash at any point leaves either the old snapshot at `path`,
    /// or the old one at `<path>.prev` and the new one at `path` —
    /// never a torn file at a path a reader trusts.
    pub fn write_atomic(&self, path: &Path) -> Result<(), CheckpointError> {
        let bytes = self.to_bytes();
        let tmp = path_with_suffix(path, ".tmp");
        let prev = path_with_suffix(path, ".prev");
        let io_err = |what: &str, p: &Path, e: std::io::Error| {
            CheckpointError::Io(format!("{what} {}: {e}", p.display()))
        };
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir).map_err(|e| io_err("create dir", dir, e))?;
            }
        }
        let mut f = fs::File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
        f.write_all(&bytes).map_err(|e| io_err("write", &tmp, e))?;
        f.sync_all().map_err(|e| io_err("fsync", &tmp, e))?;
        drop(f);
        if path.exists() {
            fs::rename(path, &prev).map_err(|e| io_err("rotate", path, e))?;
        }
        fs::rename(&tmp, path).map_err(|e| io_err("rename", &tmp, e))?;
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                // Durability of the renames themselves; failure here
                // (e.g. an unsyncable virtual fs) does not lose data
                // already fsynced to the file.
                if let Ok(d) = fs::File::open(dir) {
                    let _ = d.sync_all();
                }
            }
        }
        Ok(())
    }

    /// Reads and parses the snapshot at `path`.
    pub fn read(path: &Path) -> Result<Self, CheckpointError> {
        let bytes = fs::read(path)
            .map_err(|e| CheckpointError::Io(format!("read {}: {e}", path.display())))?;
        Self::from_bytes(&bytes, &path.display().to_string())
    }

    /// Reads `path`, falling back to `<path>.prev` when `path` is
    /// missing, torn, or corrupt. Returns the snapshot and the path it
    /// was actually loaded from; `skipped` (when `Some`) is the error
    /// that disqualified the primary. Version/spec problems do **not**
    /// fall back — see `CheckpointError::recoverable`.
    pub fn read_with_fallback(
        path: &Path,
    ) -> Result<(Self, PathBuf, Option<CheckpointError>), CheckpointError> {
        match Self::read(path) {
            Ok(ckpt) => Ok((ckpt, path.to_path_buf(), None)),
            Err(primary) if primary.recoverable() => {
                let prev = path_with_suffix(path, ".prev");
                match Self::read(&prev) {
                    Ok(ckpt) => Ok((ckpt, prev, Some(primary))),
                    // The primary's error names the file the caller
                    // asked for; the fallback's failure is secondary.
                    Err(_) => Err(primary),
                }
            }
            Err(hard) => Err(hard),
        }
    }
}

/// `<path><suffix>` with the suffix appended to the full file name
/// (`run.ckpt` → `run.ckpt.prev`), keeping the family adjacent in
/// directory listings.
fn path_with_suffix(path: &Path, suffix: &str) -> PathBuf {
    let mut s = path.as_os_str().to_os_string();
    s.push(suffix);
    PathBuf::from(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut c = Checkpoint::new("spec/1;seed=42", 3, 1234.5);
        c.push_section("alpha", vec![1, 2, 3]);
        c.push_section("beta", vec![]);
        c.push_section("gamma", (0..=255u8).collect());
        c
    }

    #[test]
    fn bytes_roundtrip() {
        let c = sample();
        let bytes = c.to_bytes();
        let back = Checkpoint::from_bytes(&bytes, "mem").expect("roundtrip");
        assert_eq!(back, c);
        assert_eq!(back.crate_version, CRATE_VERSION);
        assert_eq!(back.first_divergent_section(&c), None);
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            let err = Checkpoint::from_bytes(&bytes[..cut], "mem")
                .expect_err("truncated file must not parse");
            assert!(
                err.recoverable(),
                "truncation at {cut} produced unrecoverable {err:?}"
            );
        }
    }

    #[test]
    fn every_single_byte_corruption_is_detected() {
        let bytes = sample().to_bytes();
        // Flipping any single bit either breaks the checksum, the
        // magic, the recorded length, or (for the version field) the
        // version gate — never yields a silently different snapshot.
        let original = Checkpoint::from_bytes(&bytes, "mem").expect("parses");
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            match Checkpoint::from_bytes(&bad, "mem") {
                Err(_) => {}
                Ok(parsed) => panic!(
                    "flip at byte {i} parsed as {:?} vs {:?}",
                    parsed.seq, original.seq
                ),
            }
        }
    }

    #[test]
    fn format_version_gate() {
        let mut bytes = sample().to_bytes();
        bytes[8] = FORMAT_VERSION as u8 + 1;
        // Keep the checksum valid so the version check is what fires.
        let sum = fnv1a(&bytes[..bytes.len() - 8]);
        let n = bytes.len();
        bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
        let err = Checkpoint::from_bytes(&bytes, "mem").expect_err("version gate");
        assert_eq!(
            err,
            CheckpointError::FormatVersionMismatch {
                found: FORMAT_VERSION + 1,
                expected: FORMAT_VERSION
            }
        );
        assert!(!err.recoverable(), "version mismatch must not fall back");
    }

    #[test]
    fn compat_gate_names_both_specs() {
        let c = sample();
        c.verify_compat("spec/1;seed=42").expect("same spec passes");
        let err = c.verify_compat("spec/1;seed=43").expect_err("spec gate");
        let msg = err.to_string();
        assert!(msg.contains("seed=42") && msg.contains("seed=43"), "{msg}");
    }

    #[test]
    fn atomic_write_rotates_prev_and_fallback_reads_it() {
        let dir = std::env::temp_dir().join(format!("dcsim-ckpt-test-{}", std::process::id()));
        let path = dir.join("run.ckpt");
        let mut c1 = sample();
        c1.seq = 1;
        c1.write_atomic(&path).expect("write 1");
        let mut c2 = sample();
        c2.seq = 2;
        c2.write_atomic(&path).expect("write 2");

        let (best, from, skipped) = Checkpoint::read_with_fallback(&path).expect("read");
        assert_eq!(best.seq, 2);
        assert_eq!(from, path);
        assert!(skipped.is_none());

        // Tear the primary: the fallback must serve seq 1 and report
        // what was wrong with the primary.
        let bytes = fs::read(&path).expect("read back");
        fs::write(&path, &bytes[..bytes.len() / 2]).expect("tear");
        let (older, from, skipped) = Checkpoint::read_with_fallback(&path).expect("fallback");
        assert_eq!(older.seq, 1);
        assert!(from.to_string_lossy().ends_with(".prev"));
        assert!(matches!(skipped, Some(CheckpointError::Truncated(_))));

        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn enc_dec_scalar_roundtrip() {
        let mut e = Enc::new();
        e.u8(7);
        e.bool(true);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX);
        e.f64(-0.0);
        e.f64(f64::NAN);
        e.f32(1.5);
        e.str("héllo");
        e.opt_f64(Some(2.25));
        e.opt_f64(None);
        e.f64s(&[1.0, 2.0]);
        e.u64s(&[3]);
        e.u32s(&[4, 5, 6]);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes, "test");
        assert_eq!(d.u8().expect("u8"), 7);
        assert!(d.bool().expect("bool"));
        assert_eq!(d.u32().expect("u32"), 0xDEAD_BEEF);
        assert_eq!(d.u64().expect("u64"), u64::MAX);
        let z = d.f64().expect("f64");
        assert_eq!(z.to_bits(), (-0.0f64).to_bits(), "signed zero preserved");
        assert!(d.f64().expect("nan").is_nan());
        assert_eq!(d.f32().expect("f32"), 1.5);
        assert_eq!(d.str().expect("str"), "héllo");
        assert_eq!(d.opt_f64().expect("some"), Some(2.25));
        assert_eq!(d.opt_f64().expect("none"), None);
        assert_eq!(d.f64s().expect("f64s"), vec![1.0, 2.0]);
        assert_eq!(d.u64s().expect("u64s"), vec![3]);
        assert_eq!(d.u32s().expect("u32s"), vec![4, 5, 6]);
        d.finish().expect("fully consumed");
    }

    #[test]
    fn dec_rejects_absurd_lengths() {
        let mut e = Enc::new();
        e.usize(usize::MAX / 2); // claims an impossible element count
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes, "test");
        assert!(matches!(d.f64s(), Err(CheckpointError::Corrupt(_))));
    }

    #[test]
    fn dec_reports_trailing_bytes() {
        let mut e = Enc::new();
        e.u32(1);
        e.u32(2);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes, "test");
        let _ = d.u32().expect("first");
        assert!(matches!(d.finish(), Err(CheckpointError::Corrupt(_))));
    }
}
