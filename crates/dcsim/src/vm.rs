//! Virtual machine model.

use crate::ids::{ServerId, VmId};
use crate::sla::VmPriority;
use serde::{Deserialize, Serialize};

/// Lifecycle state of a VM inside a run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum VmState {
    /// Hosted on a server (running, or pending start while the host
    /// wakes).
    Hosted {
        /// Current host.
        host: ServerId,
    },
    /// Live-migrating between two servers; keeps executing at `from`
    /// until the migration completes.
    Migrating {
        /// Source host (where the VM currently executes).
        from: ServerId,
        /// Destination host (where capacity is reserved).
        to: ServerId,
    },
    /// Departed (lifetime expired) — no longer consumes resources.
    Departed,
    /// Could not be placed (no acceptance and no server to wake) and
    /// was dropped. Counted by [`crate::SimStats`].
    Dropped,
}

/// A virtual machine: which trace drives it and where it currently is.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vm {
    /// Own id.
    pub id: VmId,
    /// Index into the workload's `TraceSet`.
    pub trace_idx: usize,
    /// Current CPU demand in MHz (refreshed every trace step).
    pub demand_mhz: f64,
    /// Committed memory in MB (static over the VM's life; 0 when the
    /// workload does not model RAM).
    pub ram_mb: f64,
    /// Lifecycle state.
    pub state: VmState,
    /// Arrival time, seconds.
    pub arrived_secs: f64,
    /// SLA class (determines CPU share under overload when the
    /// kernel's sharing mode is priority-based).
    pub priority: VmPriority,
    /// Migration epoch: bumped whenever a migration involving this VM
    /// starts, completes or is aborted. A `MigrationComplete` event
    /// carrying a stale epoch is ignored, so rollbacks and departures
    /// can never be raced by an already-queued completion.
    #[serde(default)]
    pub migration_seq: u32,
    /// Remaining lifetime once execution starts, seconds (`None` for
    /// VMs that live until the end of the run).
    #[serde(default)]
    pub lifetime_secs: Option<f64>,
    /// True once the VM has started executing on an `Active` server
    /// (its departure has been scheduled). VMs pending on a `Waking`
    /// host hold capacity but have not started.
    #[serde(default)]
    pub started: bool,
    /// Spot/preemptible VM: the engine may evict it (early departure)
    /// when a high migration finds no destination.
    #[serde(default)]
    pub evictable: bool,
}

impl Vm {
    /// The server whose *physical* load this VM contributes to, if any
    /// (the source during a migration).
    #[inline]
    pub fn executing_on(&self) -> Option<ServerId> {
        match self.state {
            VmState::Hosted { host } => Some(host),
            VmState::Migrating { from, .. } => Some(from),
            VmState::Departed | VmState::Dropped => None,
        }
    }

    /// True while the VM occupies resources somewhere.
    #[inline]
    pub fn is_alive(&self) -> bool {
        !matches!(self.state, VmState::Departed | VmState::Dropped)
    }

    /// True while a live migration is in flight.
    #[inline]
    pub fn is_migrating(&self) -> bool {
        matches!(self.state, VmState::Migrating { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vm(state: VmState) -> Vm {
        Vm {
            id: VmId(0),
            trace_idx: 0,
            demand_mhz: 100.0,
            ram_mb: 0.0,
            state,
            arrived_secs: 0.0,
            priority: VmPriority::default(),
            migration_seq: 0,
            lifetime_secs: None,
            started: false,
            evictable: false,
        }
    }

    #[test]
    fn executing_host_follows_state() {
        assert_eq!(
            vm(VmState::Hosted { host: ServerId(2) }).executing_on(),
            Some(ServerId(2))
        );
        assert_eq!(
            vm(VmState::Migrating {
                from: ServerId(1),
                to: ServerId(3)
            })
            .executing_on(),
            Some(ServerId(1))
        );
        assert_eq!(vm(VmState::Departed).executing_on(), None);
        assert_eq!(vm(VmState::Dropped).executing_on(), None);
    }

    #[test]
    fn liveness() {
        assert!(vm(VmState::Hosted { host: ServerId(0) }).is_alive());
        assert!(vm(VmState::Migrating {
            from: ServerId(0),
            to: ServerId(1)
        })
        .is_alive());
        assert!(!vm(VmState::Departed).is_alive());
        assert!(!vm(VmState::Dropped).is_alive());
    }

    #[test]
    fn migrating_flag() {
        assert!(vm(VmState::Migrating {
            from: ServerId(0),
            to: ServerId(1)
        })
        .is_migrating());
        assert!(!vm(VmState::Hosted { host: ServerId(0) }).is_migrating());
    }
}
