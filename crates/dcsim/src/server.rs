//! Physical server model: capacity, sleep states and the power curve.

use crate::ids::VmId;
use ecocloud_traces::units::MHZ_PER_CORE;
use serde::{Deserialize, Serialize};

/// Static description of a server's hardware.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ServerSpec {
    /// Number of CPU cores.
    pub cores: u32,
    /// Frequency of each core in MHz (the paper's fleet: 2,000).
    pub mhz_per_core: f64,
    /// Installed memory in MB (4 GB per core in the paper-style
    /// fleet). Only consulted when the workload carries RAM demands —
    /// the paper's §V multi-resource extension.
    pub ram_mb: f64,
    /// Power model of the machine.
    pub power: PowerModel,
}

impl ServerSpec {
    /// A server with `cores` 2 GHz cores and the calibrated power model
    /// (see `DESIGN.md` §5): `P_max` = 150/200/250 W for 4/6/8 cores,
    /// idle draw 70 % of peak — the paper's §I cites 65–70 %. These
    /// values land the 48-hour run's peak draw in the ≈35 kW band of
    /// the paper's Fig. 8.
    pub fn paper(cores: u32) -> Self {
        let p_max = 50.0 + 25.0 * cores as f64;
        Self {
            cores,
            mhz_per_core: MHZ_PER_CORE,
            ram_mb: cores as f64 * 4096.0,
            power: PowerModel {
                idle_w: 0.70 * p_max,
                max_w: p_max,
            },
        }
    }

    /// Total CPU capacity in MHz.
    #[inline]
    pub fn capacity_mhz(&self) -> f64 {
        self.cores as f64 * self.mhz_per_core
    }
}

/// Linear utilization→power curve.
///
/// `P(u) = idle_w + (max_w − idle_w) · u` while the server is powered,
/// 0 W while hibernated. The linear model is standard (SPECpower fits
/// within a few percent) and is what the related work the paper
/// compares against (Beloglazov & Buyya) uses as well.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PowerModel {
    /// Draw at zero utilization, watts.
    pub idle_w: f64,
    /// Draw at full utilization, watts.
    pub max_w: f64,
}

impl PowerModel {
    /// Power at utilization `u` (clamped to [0, 1]), watts.
    #[inline]
    pub fn power_w(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        self.idle_w + (self.max_w - self.idle_w) * u
    }
}

/// Dynamic power state of a server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ServerState {
    /// Fully operational.
    Active,
    /// Transitioning from hibernation; becomes `Active` at the given
    /// simulated time (seconds). Draws idle power, can already have VMs
    /// assigned (they start when the wake completes).
    Waking {
        /// Completion time of the wake transition, seconds.
        until_secs: f64,
    },
    /// In a low-power sleep mode; draws no power.
    Hibernated,
    /// Crashed (or a wake that exhausted its retries). Draws no power,
    /// hosts nothing, and is invisible to placement until the repair
    /// completes at the given simulated time (seconds).
    Failed {
        /// Completion time of the repair, seconds.
        until_secs: f64,
    },
}

/// A physical server: spec, state and the VMs it hosts.
///
/// This is the *cold* half of the per-server state — fields the event
/// loop touches rarely (placement bookkeeping, RAM accounting, the VM
/// list). The two CPU-load floats every monitor tick and invitation
/// broadcast reads (`used_mhz`, `reserved_mhz`) live in
/// [`crate::cluster::Cluster`]'s dense parallel vectors instead, so the
/// hot scans walk contiguous `f64` arrays rather than pulling whole
/// `Server` structs through the cache (see `DESIGN.md` §14). Read them
/// through [`crate::cluster::ServerRef`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Server {
    /// Hardware description.
    pub spec: ServerSpec,
    /// Current power state.
    pub state: ServerState,
    /// VMs currently hosted (running, or pending while waking).
    pub vms: Vec<VmId>,
    /// RAM of hosted VMs, MB (kept incrementally).
    pub used_ram_mb: f64,
    /// RAM of VMs currently migrating towards this server, MB.
    pub reserved_ram_mb: f64,
    /// Number of in-flight migrations reserving capacity here. When it
    /// drops to zero the float reservations are snapped back to
    /// exactly 0.0 so accumulated rounding dust cannot leak into
    /// hibernation-eligibility checks.
    #[serde(default)]
    pub reserved_count: u32,
    /// Time the server last became empty (for idle-timeout
    /// hibernation); `None` while it hosts VMs or is hibernated.
    pub empty_since_secs: Option<f64>,
}

impl Server {
    /// Creates a server in the given initial state with no VMs.
    pub fn new(spec: ServerSpec, state: ServerState) -> Self {
        let empty_since = match state {
            ServerState::Hibernated | ServerState::Failed { .. } => None,
            _ => Some(0.0),
        };
        Self {
            spec,
            state,
            vms: Vec::new(),
            used_ram_mb: 0.0,
            reserved_ram_mb: 0.0,
            reserved_count: 0,
            empty_since_secs: empty_since,
        }
    }

    /// Total capacity in MHz.
    #[inline]
    pub fn capacity_mhz(&self) -> f64 {
        self.spec.capacity_mhz()
    }

    /// RAM utilization in [0, ∞): committed memory over installed
    /// memory (0 when the workload carries no RAM demands).
    #[inline]
    pub fn ram_utilization(&self) -> f64 {
        self.used_ram_mb / self.spec.ram_mb
    }

    /// RAM utilization for placement decisions (committed + reserved
    /// by in-flight migrations).
    #[inline]
    pub fn decision_ram_utilization(&self) -> f64 {
        (self.used_ram_mb + self.reserved_ram_mb) / self.spec.ram_mb
    }

    /// True when committed memory exceeds installed memory.
    #[inline]
    pub fn is_ram_overcommitted(&self) -> bool {
        self.used_ram_mb > self.spec.ram_mb * (1.0 + 1e-9)
    }

    /// True while the server can execute VMs or is about to
    /// (Active or Waking).
    #[inline]
    pub fn is_powered(&self) -> bool {
        matches!(
            self.state,
            ServerState::Active | ServerState::Waking { .. }
        )
    }

    /// True when the server is fully operational.
    #[inline]
    pub fn is_active(&self) -> bool {
        matches!(self.state, ServerState::Active)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_specs() {
        let s4 = ServerSpec::paper(4);
        let s6 = ServerSpec::paper(6);
        let s8 = ServerSpec::paper(8);
        assert_eq!(s4.capacity_mhz(), 8_000.0);
        assert_eq!(s6.capacity_mhz(), 12_000.0);
        assert_eq!(s8.capacity_mhz(), 16_000.0);
        assert_eq!(s4.power.max_w, 150.0);
        assert_eq!(s6.power.max_w, 200.0);
        assert_eq!(s8.power.max_w, 250.0);
        // §I: an idle server draws 65–70 % of peak.
        for s in [s4, s6, s8] {
            let ratio = s.power.idle_w / s.power.max_w;
            assert!((0.65..=0.70).contains(&ratio));
        }
    }

    #[test]
    fn power_curve_is_linear_and_clamped() {
        let p = PowerModel {
            idle_w: 70.0,
            max_w: 100.0,
        };
        assert_eq!(p.power_w(0.0), 70.0);
        assert_eq!(p.power_w(1.0), 100.0);
        assert_eq!(p.power_w(0.5), 85.0);
        assert_eq!(p.power_w(-1.0), 70.0);
        assert_eq!(p.power_w(2.0), 100.0);
    }

    #[test]
    fn powered_states() {
        let spec = ServerSpec::paper(6);
        let mut s = Server::new(spec, ServerState::Hibernated);
        assert!(!s.is_powered());
        s.state = ServerState::Waking { until_secs: 10.0 };
        assert!(s.is_powered());
        assert!(!s.is_active());
        s.state = ServerState::Active;
        assert!(s.is_active());
        s.state = ServerState::Failed { until_secs: 99.0 };
        assert!(!s.is_powered());
    }

    #[test]
    fn ram_utilization_and_overcommit() {
        let mut s = Server::new(ServerSpec::paper(4), ServerState::Active);
        assert_eq!(s.spec.ram_mb, 16_384.0);
        assert_eq!(s.ram_utilization(), 0.0);
        assert!(!s.is_ram_overcommitted());
        s.used_ram_mb = 8_192.0;
        s.reserved_ram_mb = 4_096.0;
        assert!((s.ram_utilization() - 0.5).abs() < 1e-12);
        assert!((s.decision_ram_utilization() - 0.75).abs() < 1e-12);
        s.used_ram_mb = 20_000.0;
        assert!(s.is_ram_overcommitted());
    }

    #[test]
    fn new_server_empty_since_tracks_state() {
        let spec = ServerSpec::paper(4);
        assert!(Server::new(spec, ServerState::Active)
            .empty_since_secs
            .is_some());
        assert!(Server::new(spec, ServerState::Hibernated)
            .empty_since_secs
            .is_none());
    }
}
