//! Physical server model: capacity, sleep states and the power curve.

use crate::ids::VmId;
use ecocloud_traces::units::MHZ_PER_CORE;
use serde::{Deserialize, Serialize};

/// Static description of a server's hardware.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ServerSpec {
    /// Number of CPU cores.
    pub cores: u32,
    /// Frequency of each core in MHz (the paper's fleet: 2,000).
    pub mhz_per_core: f64,
    /// Installed memory in MB (4 GB per core in the paper-style
    /// fleet). Only consulted when the workload carries RAM demands —
    /// the paper's §V multi-resource extension.
    pub ram_mb: f64,
    /// Power model of the machine.
    pub power: PowerModel,
}

impl ServerSpec {
    /// A server with `cores` 2 GHz cores and the calibrated power model
    /// (see `DESIGN.md` §5): `P_max` = 150/200/250 W for 4/6/8 cores,
    /// idle draw 70 % of peak — the paper's §I cites 65–70 %. These
    /// values land the 48-hour run's peak draw in the ≈35 kW band of
    /// the paper's Fig. 8.
    pub fn paper(cores: u32) -> Self {
        let p_max = 50.0 + 25.0 * cores as f64;
        Self {
            cores,
            mhz_per_core: MHZ_PER_CORE,
            ram_mb: cores as f64 * 4096.0,
            power: PowerModel {
                idle_w: 0.70 * p_max,
                max_w: p_max,
            },
        }
    }

    /// Total CPU capacity in MHz.
    #[inline]
    pub fn capacity_mhz(&self) -> f64 {
        self.cores as f64 * self.mhz_per_core
    }
}

/// Linear utilization→power curve.
///
/// `P(u) = idle_w + (max_w − idle_w) · u` while the server is powered,
/// 0 W while hibernated. The linear model is standard (SPECpower fits
/// within a few percent) and is what the related work the paper
/// compares against (Beloglazov & Buyya) uses as well.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PowerModel {
    /// Draw at zero utilization, watts.
    pub idle_w: f64,
    /// Draw at full utilization, watts.
    pub max_w: f64,
}

impl PowerModel {
    /// Power at utilization `u` (clamped to [0, 1]), watts.
    #[inline]
    pub fn power_w(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        self.idle_w + (self.max_w - self.idle_w) * u
    }
}

/// Dynamic power state of a server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ServerState {
    /// Fully operational.
    Active,
    /// Transitioning from hibernation; becomes `Active` at the given
    /// simulated time (seconds). Draws idle power, can already have VMs
    /// assigned (they start when the wake completes).
    Waking {
        /// Completion time of the wake transition, seconds.
        until_secs: f64,
    },
    /// In a low-power sleep mode; draws no power.
    Hibernated,
    /// Crashed (or a wake that exhausted its retries). Draws no power,
    /// hosts nothing, and is invisible to placement until the repair
    /// completes at the given simulated time (seconds).
    Failed {
        /// Completion time of the repair, seconds.
        until_secs: f64,
    },
}

/// A physical server: spec, state and the VMs it hosts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Server {
    /// Hardware description.
    pub spec: ServerSpec,
    /// Current power state.
    pub state: ServerState,
    /// VMs currently hosted (running, or pending while waking).
    pub vms: Vec<VmId>,
    /// Total demand of hosted VMs, MHz (kept incrementally).
    pub used_mhz: f64,
    /// Demand of VMs currently migrating *towards* this server, MHz.
    /// Counted in placement decisions so concurrent migrations cannot
    /// oversubscribe the target, but not in physical load/power.
    pub reserved_mhz: f64,
    /// RAM of hosted VMs, MB (kept incrementally).
    pub used_ram_mb: f64,
    /// RAM of VMs currently migrating towards this server, MB.
    pub reserved_ram_mb: f64,
    /// Number of in-flight migrations reserving capacity here. When it
    /// drops to zero the float reservations are snapped back to
    /// exactly 0.0 so accumulated rounding dust cannot leak into
    /// hibernation-eligibility checks.
    #[serde(default)]
    pub reserved_count: u32,
    /// Time the server last became empty (for idle-timeout
    /// hibernation); `None` while it hosts VMs or is hibernated.
    pub empty_since_secs: Option<f64>,
}

impl Server {
    /// Creates a server in the given initial state with no VMs.
    pub fn new(spec: ServerSpec, state: ServerState) -> Self {
        let empty_since = match state {
            ServerState::Hibernated | ServerState::Failed { .. } => None,
            _ => Some(0.0),
        };
        Self {
            spec,
            state,
            vms: Vec::new(),
            used_mhz: 0.0,
            reserved_mhz: 0.0,
            used_ram_mb: 0.0,
            reserved_ram_mb: 0.0,
            reserved_count: 0,
            empty_since_secs: empty_since,
        }
    }

    /// Reserves capacity for one incoming migration.
    pub fn add_reservation(&mut self, demand_mhz: f64, ram_mb: f64) {
        debug_assert!(demand_mhz >= 0.0 && ram_mb >= 0.0);
        self.reserved_mhz += demand_mhz;
        self.reserved_ram_mb += ram_mb;
        self.reserved_count += 1;
    }

    /// Releases the reservation of one finished (or aborted) incoming
    /// migration by exact subtraction. Real accounting drift — trying
    /// to release more than is reserved — is caught by debug
    /// assertions; sub-ulp float dust is snapped to zero once no
    /// migration is in flight.
    pub fn release_reservation(&mut self, demand_mhz: f64, ram_mb: f64) {
        debug_assert!(
            self.reserved_count > 0,
            "released a reservation that was never added"
        );
        let tol = 1e-6 * demand_mhz.abs().max(1.0);
        debug_assert!(
            self.reserved_mhz - demand_mhz >= -tol,
            "CPU reservation drift: releasing {demand_mhz} MHz of {} reserved",
            self.reserved_mhz
        );
        let ram_tol = 1e-6 * ram_mb.abs().max(1.0);
        debug_assert!(
            self.reserved_ram_mb - ram_mb >= -ram_tol,
            "RAM reservation drift: releasing {ram_mb} MB of {} reserved",
            self.reserved_ram_mb
        );
        self.reserved_mhz -= demand_mhz;
        self.reserved_ram_mb -= ram_mb;
        self.reserved_count = self.reserved_count.saturating_sub(1);
        if self.reserved_count == 0 {
            debug_assert!(
                self.reserved_mhz.abs() <= tol && self.reserved_ram_mb.abs() <= ram_tol,
                "reservation dust beyond rounding: {} MHz / {} MB left with no \
                 migration in flight",
                self.reserved_mhz,
                self.reserved_ram_mb
            );
            self.reserved_mhz = 0.0;
            self.reserved_ram_mb = 0.0;
        } else {
            // Dust between concurrent migrations must not go negative.
            self.reserved_mhz = self.reserved_mhz.max(0.0);
            self.reserved_ram_mb = self.reserved_ram_mb.max(0.0);
        }
    }

    /// Total capacity in MHz.
    #[inline]
    pub fn capacity_mhz(&self) -> f64 {
        self.spec.capacity_mhz()
    }

    /// Physical CPU utilization in [0, ∞): hosted demand over capacity.
    /// Values above 1 indicate overload (demand exceeds capacity).
    #[inline]
    pub fn utilization(&self) -> f64 {
        self.used_mhz / self.capacity_mhz()
    }

    /// Utilization used for placement decisions: includes demand
    /// reserved by in-flight incoming migrations.
    #[inline]
    pub fn decision_utilization(&self) -> f64 {
        (self.used_mhz + self.reserved_mhz) / self.capacity_mhz()
    }

    /// RAM utilization in [0, ∞): committed memory over installed
    /// memory (0 when the workload carries no RAM demands).
    #[inline]
    pub fn ram_utilization(&self) -> f64 {
        self.used_ram_mb / self.spec.ram_mb
    }

    /// RAM utilization for placement decisions (committed + reserved
    /// by in-flight migrations).
    #[inline]
    pub fn decision_ram_utilization(&self) -> f64 {
        (self.used_ram_mb + self.reserved_ram_mb) / self.spec.ram_mb
    }

    /// True when committed memory exceeds installed memory.
    #[inline]
    pub fn is_ram_overcommitted(&self) -> bool {
        self.used_ram_mb > self.spec.ram_mb * (1.0 + 1e-9)
    }

    /// True while the server can execute VMs or is about to
    /// (Active or Waking).
    #[inline]
    pub fn is_powered(&self) -> bool {
        matches!(
            self.state,
            ServerState::Active | ServerState::Waking { .. }
        )
    }

    /// True when the server is fully operational.
    #[inline]
    pub fn is_active(&self) -> bool {
        matches!(self.state, ServerState::Active)
    }

    /// True when demand exceeds capacity (VMs are being short-changed).
    #[inline]
    pub fn is_overloaded(&self) -> bool {
        self.used_mhz > self.capacity_mhz() * (1.0 + 1e-9)
    }

    /// Fraction of demanded CPU actually granted to hosted VMs
    /// (proportional share): 1 when not overloaded.
    #[inline]
    pub fn granted_fraction(&self) -> f64 {
        if self.used_mhz <= 0.0 {
            1.0
        } else {
            (self.capacity_mhz() / self.used_mhz).min(1.0)
        }
    }

    /// Instantaneous power draw, watts. Waking servers draw idle power;
    /// running VMs on an Active server drive the linear curve; a
    /// hibernated server draws nothing.
    pub fn power_w(&self) -> f64 {
        match self.state {
            ServerState::Hibernated | ServerState::Failed { .. } => 0.0,
            ServerState::Waking { .. } => self.spec.power.idle_w,
            ServerState::Active => self.spec.power.power_w(self.utilization()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_specs() {
        let s4 = ServerSpec::paper(4);
        let s6 = ServerSpec::paper(6);
        let s8 = ServerSpec::paper(8);
        assert_eq!(s4.capacity_mhz(), 8_000.0);
        assert_eq!(s6.capacity_mhz(), 12_000.0);
        assert_eq!(s8.capacity_mhz(), 16_000.0);
        assert_eq!(s4.power.max_w, 150.0);
        assert_eq!(s6.power.max_w, 200.0);
        assert_eq!(s8.power.max_w, 250.0);
        // §I: an idle server draws 65–70 % of peak.
        for s in [s4, s6, s8] {
            let ratio = s.power.idle_w / s.power.max_w;
            assert!((0.65..=0.70).contains(&ratio));
        }
    }

    #[test]
    fn power_curve_is_linear_and_clamped() {
        let p = PowerModel {
            idle_w: 70.0,
            max_w: 100.0,
        };
        assert_eq!(p.power_w(0.0), 70.0);
        assert_eq!(p.power_w(1.0), 100.0);
        assert_eq!(p.power_w(0.5), 85.0);
        assert_eq!(p.power_w(-1.0), 70.0);
        assert_eq!(p.power_w(2.0), 100.0);
    }

    #[test]
    fn state_dependent_power() {
        let spec = ServerSpec::paper(6);
        let mut s = Server::new(spec, ServerState::Hibernated);
        assert_eq!(s.power_w(), 0.0);
        s.state = ServerState::Waking { until_secs: 10.0 };
        assert_eq!(s.power_w(), spec.power.idle_w);
        s.state = ServerState::Active;
        s.used_mhz = spec.capacity_mhz();
        assert_eq!(s.power_w(), spec.power.max_w);
        s.state = ServerState::Failed { until_secs: 99.0 };
        assert_eq!(s.power_w(), 0.0);
        assert!(!s.is_powered());
    }

    #[test]
    fn overload_and_granted_fraction() {
        let mut s = Server::new(ServerSpec::paper(4), ServerState::Active);
        s.used_mhz = 4_000.0;
        assert!(!s.is_overloaded());
        assert_eq!(s.granted_fraction(), 1.0);
        s.used_mhz = 10_000.0; // capacity is 8,000
        assert!(s.is_overloaded());
        assert!((s.granted_fraction() - 0.8).abs() < 1e-12);
        assert!((s.utilization() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn decision_utilization_includes_reservations() {
        let mut s = Server::new(ServerSpec::paper(4), ServerState::Active);
        s.used_mhz = 4_000.0;
        s.reserved_mhz = 2_000.0;
        assert!((s.utilization() - 0.5).abs() < 1e-12);
        assert!((s.decision_utilization() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ram_utilization_and_overcommit() {
        let mut s = Server::new(ServerSpec::paper(4), ServerState::Active);
        assert_eq!(s.spec.ram_mb, 16_384.0);
        assert_eq!(s.ram_utilization(), 0.0);
        assert!(!s.is_ram_overcommitted());
        s.used_ram_mb = 8_192.0;
        s.reserved_ram_mb = 4_096.0;
        assert!((s.ram_utilization() - 0.5).abs() < 1e-12);
        assert!((s.decision_ram_utilization() - 0.75).abs() < 1e-12);
        s.used_ram_mb = 20_000.0;
        assert!(s.is_ram_overcommitted());
    }

    #[test]
    fn reservations_snap_to_zero_when_drained() {
        let mut s = Server::new(ServerSpec::paper(4), ServerState::Active);
        s.add_reservation(1000.0, 512.0);
        s.add_reservation(0.1 + 0.2, 0.0); // deliberately dusty value
        assert_eq!(s.reserved_count, 2);
        s.release_reservation(1000.0, 512.0);
        assert!(s.reserved_mhz > 0.0);
        s.release_reservation(0.1 + 0.2, 0.0);
        assert_eq!(s.reserved_count, 0);
        assert_eq!(s.reserved_mhz, 0.0, "dust must be snapped to zero");
        assert_eq!(s.reserved_ram_mb, 0.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "never added")]
    fn releasing_unbalanced_reservation_panics_in_debug() {
        let mut s = Server::new(ServerSpec::paper(4), ServerState::Active);
        s.release_reservation(100.0, 0.0);
    }

    #[test]
    fn new_server_empty_since_tracks_state() {
        let spec = ServerSpec::paper(4);
        assert!(Server::new(spec, ServerState::Active)
            .empty_since_secs
            .is_some());
        assert!(Server::new(spec, ServerState::Hibernated)
            .empty_since_secs
            .is_none());
    }
}
