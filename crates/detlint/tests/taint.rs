//! Cross-crate taint integration tests: the wrapper and re-export
//! holes that the token-level rules (PR 4) provably miss, closed by
//! the symbol/call-graph/taint passes.
//!
//! Each scenario is staged from on-disk fixtures under synthetic
//! workspace-relative paths, linted through [`workspace::lint_files`]
//! — the same entry the CLI uses — and asserted down to exact (file,
//! line, rule) coordinates.

use std::path::PathBuf;

use detlint::rules::FileContext;
use detlint::{workspace, CrateKind, Finding};

fn root() -> PathBuf {
    let start = option_env!("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::current_dir().expect("cwd"));
    workspace::find_root(&start).expect("tests must run inside the workspace")
}

fn fixture(name: &str) -> String {
    let path = root().join("crates/detlint/tests/fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn coords(findings: &[Finding]) -> Vec<(String, u32, &'static str)> {
    findings
        .iter()
        .map(|f| (f.file.clone(), f.line, f.rule.id()))
        .collect()
}

#[test]
fn wrapper_hole_is_closed_at_the_sim_call_site() {
    let sim_src = fixture("taint_wrapper_sim.rs");

    // Token-level rules alone demonstrably miss the sim file: no
    // forbidden spelling appears in it.
    let token_only = workspace::lint_source(
        &sim_src,
        &FileContext {
            rel_path: "crates/dcsim/src/placement_ext.rs".to_string(),
            kind: CrateKind::SimCore,
        },
    );
    assert!(token_only.is_empty(), "{token_only:?}");

    let findings = workspace::lint_files(&[
        (
            "crates/jitterlib/src/lib.rs".to_string(),
            CrateKind::Entry,
            fixture("taint_wrapper_helper.rs"),
        ),
        (
            "crates/dcsim/src/placement_ext.rs".to_string(),
            CrateKind::SimCore,
            sim_src,
        ),
    ]);
    assert_eq!(
        coords(&findings),
        vec![("crates/dcsim/src/placement_ext.rs".to_string(), 6, "DL002")],
        "{findings:?}"
    );
    let msg = &findings[0].message;
    assert!(msg.contains("jitter"), "{msg}");
    assert!(
        msg.contains("thread_rng"),
        "witness chain must name the source: {msg}"
    );
    assert!(
        msg.contains("crates/jitterlib/src/lib.rs"),
        "witness chain must locate the wrapper: {msg}"
    );
}

#[test]
fn reexport_hole_is_closed_through_the_facade() {
    let findings = workspace::lint_files(&[
        (
            "crates/fastrand-ish/src/inner.rs".to_string(),
            CrateKind::Entry,
            fixture("taint_reexport_inner.rs"),
        ),
        (
            "crates/fastrand-ish/src/lib.rs".to_string(),
            CrateKind::Entry,
            fixture("taint_reexport_facade.rs"),
        ),
        (
            "crates/dcsim/src/shuffle_ext.rs".to_string(),
            CrateKind::SimCore,
            fixture("taint_reexport_sim.rs"),
        ),
    ]);
    assert_eq!(
        coords(&findings),
        vec![("crates/dcsim/src/shuffle_ext.rs".to_string(), 7, "DL002")],
        "{findings:?}"
    );
    assert!(
        findings[0].message.contains("entropy_u64"),
        "chain crosses the re-export to the real fn: {}",
        findings[0].message
    );
}

#[test]
fn taint_findings_respect_waivers_at_the_call_site() {
    let sim_src = fixture("taint_wrapper_sim.rs").replace(
        "budget + jitterlib::jitter()",
        "budget + jitterlib::jitter() // detlint: allow(dl002) — fixture waiver",
    );
    let findings = workspace::lint_files(&[
        (
            "crates/jitterlib/src/lib.rs".to_string(),
            CrateKind::Entry,
            fixture("taint_wrapper_helper.rs"),
        ),
        (
            "crates/dcsim/src/placement_ext.rs".to_string(),
            CrateKind::SimCore,
            sim_src,
        ),
    ]);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn entry_crates_may_call_tainted_helpers() {
    let findings = workspace::lint_files(&[
        (
            "crates/jitterlib/src/lib.rs".to_string(),
            CrateKind::Entry,
            fixture("taint_wrapper_helper.rs"),
        ),
        (
            "src/bench_ext.rs".to_string(),
            CrateKind::Entry,
            fixture("taint_wrapper_sim.rs"),
        ),
    ]);
    assert!(findings.is_empty(), "{findings:?}");
}
