//! Fixture-driven tests for the determinism pass, plus the self-check
//! that keeps the real workspace clean.
//!
//! Each `bad_*` fixture under `tests/fixtures/` violates exactly one
//! rule; the tests assert the exact diagnostics (file, line, rule id)
//! so a lexer regression cannot silently widen or narrow a rule.

use std::path::PathBuf;

use detlint::rules::FileContext;
use detlint::{lexer, rules, workspace, CrateKind, Finding, RuleId};

/// The workspace root, found without assuming a cargo environment (the
/// offline harness compiles these tests with plain rustc).
fn root() -> PathBuf {
    let start = option_env!("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::current_dir().expect("cwd"));
    workspace::find_root(&start).expect("tests must run inside the workspace")
}

fn fixture(name: &str) -> String {
    let path = root().join("crates/detlint/tests/fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn lint_fixture(name: &str, kind: CrateKind) -> Vec<Finding> {
    let ctx = FileContext {
        rel_path: format!("crates/detlint/tests/fixtures/{name}"),
        kind,
    };
    workspace::lint_source(&fixture(name), &ctx)
}

fn lines_of(findings: &[Finding], rule: RuleId) -> Vec<u32> {
    findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

#[test]
fn dl001_flags_every_hash_container_mention() {
    let f = lint_fixture("bad_dl001.rs", CrateKind::SimCore);
    assert_eq!(f.len(), 4, "{f:?}");
    assert_eq!(lines_of(&f, RuleId::HashCollections), vec![3, 4, 9, 11]);
    assert!(f.iter().all(|x| x.rule.id() == "DL001"));
}

#[test]
fn dl001_is_scoped_to_simulation_crates() {
    assert!(lint_fixture("bad_dl001.rs", CrateKind::Library).is_empty());
    assert!(lint_fixture("bad_dl001.rs", CrateKind::Entry).is_empty());
}

#[test]
fn dl002_flags_rng_clocks_and_env_but_not_tests() {
    let f = lint_fixture("bad_dl002.rs", CrateKind::Library);
    assert_eq!(
        lines_of(&f, RuleId::AmbientNondeterminism),
        vec![7, 13, 14, 20],
        "{f:?}"
    );
    assert_eq!(f.len(), 4, "test-module env read must stay exempt: {f:?}");
}

#[test]
fn dl002_is_silent_in_entry_crates() {
    assert!(lint_fixture("bad_dl002.rs", CrateKind::Entry).is_empty());
}

#[test]
fn dl003_flags_partial_cmp_everywhere() {
    for kind in [CrateKind::SimCore, CrateKind::Library, CrateKind::Entry] {
        let f = lint_fixture("bad_dl003.rs", kind);
        assert_eq!(lines_of(&f, RuleId::FloatOrdering), vec![6], "{kind:?}");
    }
}

#[test]
fn dl006_flags_unwrap_outside_tests_in_sim_code() {
    let f = lint_fixture("bad_dl006.rs", CrateKind::SimCore);
    assert_eq!(lines_of(&f, RuleId::UnwrapInSim), vec![5], "{f:?}");
    assert_eq!(f.len(), 1, "test-module unwrap must stay exempt: {f:?}");
    assert!(lint_fixture("bad_dl006.rs", CrateKind::Library).is_empty());
}

#[test]
fn dl004_reports_uncovered_counter_with_exact_location() {
    let stats = lexer::lex(&fixture("bad_dl004_stats.rs"));
    let engine = lexer::lex(&fixture("bad_dl004_engine.rs"));
    let asserted = rules::assert_idents(&engine);
    assert!(asserted.contains(&"migrations_started".to_string()));
    let mut findings = Vec::new();
    rules::dl004_unchecked_counters(
        &stats,
        "fixtures/bad_dl004_stats.rs",
        &asserted,
        &mut findings,
    );
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule.id(), "DL004");
    assert_eq!(findings[0].line, 10);
    assert!(findings[0].message.contains("orphan_counter"));
}

#[test]
fn dl004_counter_parsing_sees_waivers_and_skips_non_u64() {
    let stats = lexer::lex(&fixture("bad_dl004_stats.rs"));
    let fields = rules::counter_fields(&stats);
    let names: Vec<&str> = fields.iter().map(|(n, _, _)| n.as_str()).collect();
    assert_eq!(
        names,
        [
            "migrations_started",
            "migrations_completed",
            "orphan_counter",
            "waived_counter"
        ]
    );
    let waived: Vec<&str> = fields
        .iter()
        .filter(|(_, _, w)| *w)
        .map(|(n, _, _)| n.as_str())
        .collect();
    assert_eq!(waived, ["waived_counter"]);
}

#[test]
fn dl005_reports_undispatched_variant_with_exact_location() {
    let events = lexer::lex(&fixture("bad_dl005_events.rs"));
    let engine = lexer::lex(&fixture("bad_dl005_engine.rs"));
    let mut findings = Vec::new();
    rules::dl005_unmatched_events(
        &events,
        "fixtures/bad_dl005_events.rs",
        &engine,
        &mut findings,
    );
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule.id(), "DL005");
    assert_eq!(findings[0].line, 8);
    assert!(findings[0].message.contains("Orphan"));
}

/// Hostile-but-legal token soup (nested block comments, byte/raw
/// strings) must hide its contents from every rule — these fixtures
/// are the regression net for the lexer hardening.
#[test]
fn lexer_hostile_fixtures_hide_tokens_from_every_rule() {
    for name in ["bad_lexer_nested_comments.rs", "bad_lexer_raw_bytes.rs"] {
        let f = lint_fixture(name, CrateKind::SimCore);
        assert!(f.is_empty(), "{name}: {f:?}");
    }
}

#[test]
fn clean_fixture_has_zero_diagnostics_under_strictest_context() {
    let f = lint_fixture("clean.rs", CrateKind::SimCore);
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn waivers_cover_own_line_and_next_line_only() {
    let src = "\
fn a(x: f64, y: f64) {
    // detlint: allow(dl003) — next-line waiver
    let _ = x.partial_cmp(&y);
    let _ = x.partial_cmp(&y); // detlint: allow(float-ordering) — same-line, by slug
    let _ = x.partial_cmp(&y);
}
";
    let ctx = FileContext {
        rel_path: "waiver_test.rs".to_string(),
        kind: CrateKind::Library,
    };
    let f = workspace::lint_source(src, &ctx);
    assert_eq!(lines_of(&f, RuleId::FloatOrdering), vec![5], "{f:?}");
}

#[test]
fn waiver_for_one_rule_does_not_excuse_another() {
    let src = "fn a(x: f64, y: f64) { let _ = x.partial_cmp(&y); } // detlint: allow(dl001) — wrong rule\n";
    let ctx = FileContext {
        rel_path: "waiver_test.rs".to_string(),
        kind: CrateKind::Library,
    };
    let f = workspace::lint_source(src, &ctx);
    assert_eq!(f.len(), 1);
    assert_eq!(f[0].rule, RuleId::FloatOrdering);
}

#[test]
fn fixtures_are_excluded_from_workspace_classification() {
    assert!(workspace::classify("crates/detlint/tests/fixtures/bad_dl001.rs").is_none());
    assert_eq!(
        workspace::classify("crates/dcsim/src/engine.rs"),
        Some(CrateKind::SimCore)
    );
    assert_eq!(
        workspace::classify("crates/metrics/src/cdf.rs"),
        Some(CrateKind::Library)
    );
    assert_eq!(workspace::classify("src/cli.rs"), Some(CrateKind::Entry));
}

/// The gate itself: the real workspace must lint clean. This is the
/// same check CI runs via `cargo run -p detlint -- --workspace`.
#[test]
fn self_check_workspace_is_clean() {
    let report = workspace::lint_workspace(&root()).expect("workspace walk");
    assert!(
        report.findings.is_empty(),
        "the workspace must pass its own determinism lint:\n{}",
        report
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.warnings.is_empty(),
        "every workspace source must be lintable: {:?}",
        report.warnings
    );
}

/// Findings come out sorted by (file, line, rule) and deduplicated —
/// the property `--json` consumers and golden diffs rely on.
#[test]
fn workspace_findings_are_stably_sorted() {
    let inputs = vec![
        (
            "crates/dcsim/src/b.rs".to_string(),
            CrateKind::SimCore,
            "fn z(x: f64, y: f64) { let _ = x.partial_cmp(&y); }\n\
             fn a() { let _: std::collections::HashMap<u8, u8> = Default::default(); }\n"
                .to_string(),
        ),
        (
            "crates/dcsim/src/a.rs".to_string(),
            CrateKind::SimCore,
            "fn b(x: f64, y: f64) { let _ = thread_rng(); let _ = x.partial_cmp(&y); }\n"
                .to_string(),
        ),
    ];
    let findings = workspace::lint_files(&inputs);
    let keys: Vec<(String, u32, &'static str)> = findings
        .iter()
        .map(|f| (f.file.clone(), f.line, f.rule.id()))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(keys, sorted, "{findings:?}");
    assert_eq!(
        keys,
        vec![
            ("crates/dcsim/src/a.rs".to_string(), 1, "DL002"),
            ("crates/dcsim/src/a.rs".to_string(), 1, "DL003"),
            ("crates/dcsim/src/b.rs".to_string(), 1, "DL003"),
            ("crates/dcsim/src/b.rs".to_string(), 2, "DL001"),
        ]
    );
}

/// A non-UTF-8 source anywhere in the tree is skipped with a warning,
/// never a panic — staged in a synthetic workspace so the real tree
/// stays fully valid.
#[test]
fn non_utf8_source_is_skipped_with_warning() {
    let dir = std::env::temp_dir().join(format!("detlint_nonutf8_{}", std::process::id()));
    let src = dir.join("src");
    std::fs::create_dir_all(&src).expect("mkdir");
    std::fs::create_dir_all(dir.join("crates")).expect("mkdir crates");
    std::fs::write(dir.join("Cargo.toml"), "[package]\nname = \"t\"\n").expect("manifest");
    std::fs::write(src.join("lib.rs"), b"fn ok() {}\n".to_vec()).expect("good file");
    std::fs::write(src.join("junk.rs"), vec![0x66, 0x6e, 0x20, 0xff, 0xfe, 0x80]).expect("bad");
    let report = workspace::lint_workspace(&dir).expect("walk");
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(report.warnings.len(), 1, "{:?}", report.warnings);
    assert!(report.warnings[0].contains("junk.rs"), "{:?}", report.warnings);
    assert!(report.warnings[0].contains("UTF-8"), "{:?}", report.warnings);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn dl007_flags_unordered_reductions_only() {
    let f = lint_fixture("bad_dl007.rs", CrateKind::Library);
    assert_eq!(
        lines_of(&f, RuleId::UnorderedFloatReduction),
        vec![8, 13, 18],
        "{f:?}"
    );
    assert_eq!(f.len(), 3, "ordered reductions must stay exempt: {f:?}");
    assert!(lint_fixture("bad_dl007.rs", CrateKind::Entry).is_empty());
}

#[test]
fn dl008_flags_derive_and_manual_ordering_inconsistencies() {
    let f = lint_fixture("bad_dl008.rs", CrateKind::SimCore);
    assert_eq!(
        lines_of(&f, RuleId::OrderingImpls),
        vec![4, 8, 15, 27],
        "{f:?}"
    );
    assert_eq!(f.len(), 4, "the justified pair must stay exempt: {f:?}");
    assert!(lint_fixture("bad_dl008.rs", CrateKind::Entry).is_empty());
}

#[test]
fn dl009_requires_safety_comments_in_every_crate_kind() {
    for kind in [CrateKind::SimCore, CrateKind::Library, CrateKind::Entry] {
        let f = lint_fixture("bad_dl009.rs", kind);
        assert_eq!(
            lines_of(&f, RuleId::UnsafeInventory),
            vec![6, 12, 17],
            "{kind:?}: {f:?}"
        );
        assert_eq!(f.len(), 3, "documented unsafe must stay exempt: {f:?}");
    }
}

#[test]
fn dl010_flags_shared_state_outside_the_mailbox_module() {
    let f = lint_fixture("bad_dl010.rs", CrateKind::SimCore);
    assert_eq!(
        lines_of(&f, RuleId::CrossShardState),
        vec![2, 3, 3, 4, 6],
        "{f:?}"
    );
    assert_eq!(f.len(), 5, "test-module sync must stay exempt: {f:?}");
}

#[test]
fn dl010_is_scoped_to_simulation_crates() {
    assert!(lint_fixture("bad_dl010.rs", CrateKind::Library).is_empty());
    assert!(lint_fixture("bad_dl010.rs", CrateKind::Entry).is_empty());
}

#[test]
fn dl010_waives_the_shard_mailbox_module_itself() {
    let ctx = FileContext {
        rel_path: "crates/dcsim/src/shard.rs".to_string(),
        kind: CrateKind::SimCore,
    };
    let f = workspace::lint_source(&fixture("bad_dl010.rs"), &ctx);
    assert!(
        lines_of(&f, RuleId::CrossShardState).is_empty(),
        "the mailbox module is the one blessed home for sync primitives: {f:?}"
    );
}

/// The real simulator's cross-file facts the pass depends on: the
/// counter table and event enum actually parse to non-trivial sets
/// (guards against the lint rotting into a vacuous pass).
#[test]
fn self_check_parses_real_simulator_structures() {
    let stats_src =
        std::fs::read_to_string(root().join("crates/dcsim/src/stats.rs")).expect("stats.rs");
    let events_src =
        std::fs::read_to_string(root().join("crates/dcsim/src/events.rs")).expect("events.rs");
    let counters = rules::counter_fields(&lexer::lex(&stats_src));
    let variants = rules::event_variants(&lexer::lex(&events_src));
    assert!(
        counters.len() >= 20,
        "SimStats should declare many u64 counters, found {}",
        counters.len()
    );
    assert!(
        variants.len() >= 10,
        "Event should have many variants, found {}",
        variants.len()
    );
    assert!(variants.iter().any(|(v, _)| v == "WakeComplete"));
    assert!(counters.iter().any(|(c, _, _)| c == "migrations_started"));
}
