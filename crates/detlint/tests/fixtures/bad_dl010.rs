//! DL010 fixture: shared-mutable-state primitives in a simulation crate.
use std::sync::atomic::AtomicU64;
use std::sync::{mpsc, Mutex};
pub static mut LAST_SEEN: u64 = 0;
pub struct Scoreboard {
    slots: std::sync::RwLock<Vec<u64>>,
}

#[cfg(test)]
mod tests {
    #[test]
    fn coordination_inside_tests_is_exempt() {
        let (_tx, _rx) = std::sync::mpsc::channel::<u32>();
        let _gate = std::sync::Mutex::new(());
    }
}
