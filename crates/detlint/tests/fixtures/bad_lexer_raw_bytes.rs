//! Lexer fixture: byte strings, raw byte strings and raw strings must
//! hide their contents from every rule.

pub fn blobs() -> usize {
    let a = b"thread_rng HashMap";
    let b = br#"partial_cmp " unwrap"#;
    let c = r##"Instant::now env::var"##;
    let d = '\u{41}';
    a.len() + b.len() + c.len() + (d as usize)
}
