//! DL006 fixture: anonymous unwrap in simulator code.

/// Looks up simulation state without naming the invariant.
pub fn bad_lookup(xs: &[u64], i: usize) -> u64 {
    *xs.get(i).unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let _ = super::bad_lookup(&[1], "0".parse().unwrap());
    }
}
