//! Lexer fixture: nested block comments must hide their contents from
//! every rule, including across an unterminated tail.

/* outer /* inner thread_rng() HashMap */ still one comment:
   partial_cmp unwrap env::var SystemTime::now */
pub fn clean() -> u64 {
    7
}
/* unterminated nested /* comment at eof: thread_rng HashMap
