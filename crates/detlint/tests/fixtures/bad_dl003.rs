//! DL003 fixture: partial float ordering.

/// Sorts simulation times with a comparison that silently breaks on
/// NaN.
pub fn bad_sort(times: &mut [f64]) {
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
