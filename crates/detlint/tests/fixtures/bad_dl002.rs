//! DL002 fixture: ambient nondeterminism in library code.

use std::time::{Instant, SystemTime};

/// Draws from the host RNG instead of a seeded one.
pub fn bad_draw() -> u64 {
    let mut rng = rand::thread_rng();
    rand::Rng::gen(&mut rng)
}

/// Reads the host clocks instead of the simulated clock.
pub fn bad_clocks() -> bool {
    let a = Instant::now();
    let b = SystemTime::now();
    a.elapsed().as_secs() == 0 && b.elapsed().is_ok()
}

/// Reads host configuration past the explicit config + seed.
pub fn bad_env() -> Option<String> {
    std::env::var("ECOCLOUD_SECRET_KNOB").ok()
}

#[cfg(test)]
mod tests {
    /// Test code is exempt: staging a temp dir is fine.
    #[test]
    fn exempt_in_tests() {
        let _ = std::env::var("HOME");
    }
}
