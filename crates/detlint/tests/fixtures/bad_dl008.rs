//! DL008 fixture: ordering-impl inconsistencies. The justified manual
//! pair at the bottom must stay exempt.

#[derive(Debug, Clone, PartialEq, PartialOrd)]
pub struct HalfOrdered(pub f64);

/// Hash without Eq breaks the `k1 == k2 ⇒ hash(k1) == hash(k2)` contract.
#[derive(Debug, Clone, PartialEq, Hash)]
pub struct HashNoEq(pub u32);

pub struct Bare(pub u64);

// An undocumented manual impl: nothing states why this order is
// trustworthy for heaps and sorts. (Deliberately no magic word.)
impl Ord for Bare {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

pub struct Drift(pub u64);

// A PartialOrd that invents its own order instead of delegating: the
// two orderings can silently drift apart. Ordering below is spelled
// out longhand so no `cmp` ident appears in the body.
#[allow(clippy::non_canonical_partial_ord_impl)]
impl PartialOrd for Drift {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        if self.0 < other.0 {
            Some(std::cmp::Ordering::Less)
        } else {
            Some(std::cmp::Ordering::Greater)
        }
    }
}

pub struct Justified(pub u64);

// total: u64 ids give a total order; ties are impossible by uniqueness.
impl Ord for Justified {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}
impl PartialOrd for Justified {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
