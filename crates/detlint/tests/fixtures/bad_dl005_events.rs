//! DL005 fixture: an event enum with an undispatched variant.

/// Fixture mirror of `dcsim::events::Event`.
pub enum Event {
    /// Dispatched by the fixture engine.
    Tick(u64),
    /// Never matched anywhere — DL005 fires here.
    Orphan(u64, u32),
}
