//! Clean fixture: the sanctioned patterns for every rule, plus one
//! explicitly waived exception. Must produce zero diagnostics under
//! the strictest (simulation-crate) context.

use std::collections::BTreeMap;

/// Ordered simulation state (DL001 pattern).
pub struct GoodState {
    /// Deterministic iteration order.
    pub vms: BTreeMap<u32, f64>,
}

/// Total float ordering (DL003 pattern) and named invariants (DL006).
pub fn good_sort(times: &mut [f64], state: &GoodState) -> f64 {
    times.sort_by(|a, b| a.total_cmp(b));
    // Mentions inside strings and comments never count: HashMap,
    // thread_rng, Instant::now, partial_cmp.
    let _doc = "HashMap thread_rng Instant::now partial_cmp unwrap()";
    *state
        .vms
        .values()
        .next()
        .expect("invariant: a good state always holds at least one VM")
}

/// A deliberate, visible exception (waiver pattern).
pub fn waived_comparison(a: f64, b: f64) -> bool {
    a.partial_cmp(&b).is_some() // detlint: allow(dl003) — fixture: NaN-ness is the question here
}
