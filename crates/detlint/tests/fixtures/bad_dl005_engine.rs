//! DL005 fixture: a dispatch that forgets one variant.

use super::bad_dl005_events::Event;

/// Handles events — but only `Tick`.
pub fn dispatch(e: Event) -> u64 {
    match e {
        Event::Tick(n) => n,
        _ => 0,
    }
}
