//! Taint fixture, facade: re-exports the wrapper under a friendly
//! name, one hop further from the source than the plain wrapper case.

mod inner;

pub use inner::entropy_u64 as fast_u64;
