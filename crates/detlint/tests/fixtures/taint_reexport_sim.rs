//! Taint fixture, sim side of the re-export chain: imports the
//! re-exported alias; nothing here is forbidden at the token level.

use fastrand_ish::fast_u64;

pub fn shuffle_seed() -> u64 {
    fast_u64()
}
