//! Taint fixture, sim side: no forbidden token appears in this file —
//! the diagnosis must come from the cross-crate taint pass, at the
//! call site below.

pub fn place_with_jitter(budget: u64) -> u64 {
    budget + jitterlib::jitter()
}
