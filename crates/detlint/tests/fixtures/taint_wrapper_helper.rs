//! Taint fixture, helper side: a one-line wrapper that launders host
//! entropy behind an innocent name. Token-level DL002 never sees the
//! sim-side call; the taint pass must.

pub fn jitter() -> u64 {
    thread_rng().gen()
}
