//! DL004 fixture: a stats struct with an uncovered counter.

/// Fixture mirror of `dcsim::stats::SimStats`.
pub struct SimStats {
    /// Covered by the fixture engine's conservation assertion.
    pub migrations_started: u64,
    /// Covered by the same assertion.
    pub migrations_completed: u64,
    /// Not asserted anywhere and not waived — DL004 fires here.
    pub orphan_counter: u64,
    /// Waived: the waiver comment excuses it.
    pub waived_counter: u64, // detlint: unchecked-counter — fixture waiver
    /// Not a counter (not u64): out of DL004's scope.
    pub mean_latency: f64,
}
