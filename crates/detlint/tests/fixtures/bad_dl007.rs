//! DL007 fixture: float reductions over unordered or thread-merged
//! sources. The ordered reduction at the bottom must stay exempt.

use std::collections::HashMap;

fn hash_param_sum(m: &HashMap<u64, f64>) -> f64 {
    // The hash type appears only in the signature; the binding carries.
    m.values().sum()
}

fn par_merge(xs: &[f64]) -> f64 {
    // Completion order is scheduler-dependent.
    xs.par_iter().cloned().sum::<f64>()
}

fn channel_drain(rx: &std::sync::mpsc::Receiver<f64>) -> f64 {
    // try_iter yields in cross-thread arrival order.
    rx.try_iter().fold(0.0, |a, b| a + b)
}

fn ordered_ok(xs: &[f64]) -> f64 {
    xs.iter().sum()
}
