//! DL004 fixture: the engine side holding one conservation law.

/// End-of-run accounting for the fixture stats.
pub fn finish(stats: &super::bad_dl004_stats::SimStats) {
    debug_assert_eq!(
        stats.migrations_started, stats.migrations_completed,
        "fixture conservation law"
    );
}
