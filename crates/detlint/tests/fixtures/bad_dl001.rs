//! DL001 fixture: hasher-seeded containers in simulation state.

use std::collections::HashMap;
use std::collections::HashSet;

/// Simulation state with nondeterministic iteration order.
pub struct BadState {
    /// VM table — iteration order depends on the hasher seed.
    pub vms: HashMap<u32, f64>,
    /// Powered set — likewise.
    pub powered: HashSet<u32>,
}
