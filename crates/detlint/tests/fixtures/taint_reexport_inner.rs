//! Taint fixture, inner module: the actual entropy source.

pub fn entropy_u64() -> u64 {
    thread_rng().gen()
}
