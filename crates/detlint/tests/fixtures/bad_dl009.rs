//! DL009 fixture: `unsafe` without `// SAFETY:` comments. The
//! documented block at the bottom must stay exempt.

pub fn undocumented_block(p: *const u8) -> u8 {
    // reads a raw pointer with no stated invariant
    unsafe { *p }
}

pub struct Wrapper(pub *mut u8);

// This promise needs a proof, not vibes.
unsafe impl Send for Wrapper {}

/// An unsafe fn without a contract.
///
/// (doc comment, no magic word)
pub unsafe fn undocumented_fn() {}

// SAFETY: the pointer is non-null by construction in `new`, and the
// allocation lives as long as `self`.
pub fn documented_block(p: *const u8) -> u8 {
    unsafe { *p }
}
