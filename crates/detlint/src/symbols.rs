//! Item-structure parsing on top of the lexer: function definitions,
//! `use` declarations and re-exports, per crate.
//!
//! This is deliberately *not* a Rust parser. The taint pass
//! ([`crate::taint`]) only needs three structural facts per file:
//! which functions are defined here (with their body token ranges),
//! what names the file imports (so a call through an alias resolves to
//! its real path), and what the crate re-exports (so a `pub use`
//! cannot smuggle an ambient-entropy source past the token rules).
//! Everything else — types, generics, visibility — is skipped over
//! with bracket matching. The result is a conservative
//! over-approximation: a flat per-crate function table keyed by name,
//! which is exactly what a sound "could this call reach entropy?"
//! analysis wants.

use crate::lexer::{LexedFile, TokKind};
use crate::rules::test_regions;

/// One function (or method) definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The function's name (methods included, unqualified).
    pub name: String,
    /// Normalized crate ident (`dcsim`, `ecocloud_core`, `ecocloud`).
    pub krate: String,
    /// Index of the defining file in the analyzed file list.
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Half-open token-index range of the body including its braces;
    /// `(0, 0)` for bodyless declarations (trait methods, externs).
    pub body: (usize, usize),
    /// Defined inside an `impl` or `trait` block (callable as `.name(...)`).
    pub is_method: bool,
    /// Defined inside `#[cfg(test)]` / `#[test]` code.
    pub in_test: bool,
}

/// One imported or re-exported name.
#[derive(Debug, Clone)]
pub struct UseDecl {
    /// `pub use` — the name is visible to (and resolvable by) other
    /// crates under this crate's namespace.
    pub is_pub: bool,
    /// The local binding this declaration introduces (the last path
    /// segment, or the `as` alias). `*` for glob imports.
    pub alias: String,
    /// Full path segments as written, `crate`/`self`/`super`
    /// normalized away by the resolver, e.g. `["rand", "thread_rng"]`.
    pub path: Vec<String>,
    /// 1-based line of the declaration (for diagnostics).
    pub line: u32,
}

/// Structural facts about one file.
#[derive(Debug, Default)]
pub struct FileSymbols {
    /// Function definitions in source order.
    pub fns: Vec<FnDef>,
    /// `use` declarations, groups expanded one binding per entry.
    pub uses: Vec<UseDecl>,
}

/// Normalized crate ident for a workspace-relative path:
/// `crates/ecocloud-core/src/x.rs` → `ecocloud_core`, anything outside
/// `crates/` (the root package) → `ecocloud`.
pub fn crate_of(rel: &str) -> String {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("ecocloud")
        .replace('-', "_")
}

/// Half-open token ranges lying inside `impl` or `trait` blocks —
/// a `fn` in one of these is callable as a method.
fn impl_regions(lexed: &LexedFile) -> Vec<(usize, usize)> {
    let toks = &lexed.tokens;
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let is_opener = lexed.ident_at(i, "impl") || lexed.ident_at(i, "trait");
        if !is_opener {
            i += 1;
            continue;
        }
        // Find the block's `{` (or a terminating `;` for `trait X;`-ish
        // degenerate forms), then brace-match to its end.
        let mut j = i + 1;
        while j < toks.len() && !lexed.punct_at(j, "{") && !lexed.punct_at(j, ";") {
            j += 1;
        }
        if lexed.punct_at(j, "{") {
            let start = j;
            let mut depth = 1u32;
            j += 1;
            while j < toks.len() && depth > 0 {
                if lexed.punct_at(j, "{") {
                    depth += 1;
                } else if lexed.punct_at(j, "}") {
                    depth -= 1;
                }
                j += 1;
            }
            regions.push((start, j));
        }
        i = j.max(i + 1);
    }
    regions
}

fn in_any(regions: &[(usize, usize)], idx: usize) -> bool {
    regions.iter().any(|&(a, b)| idx >= a && idx < b)
}

/// Skips a generic parameter list starting at `<`, returning the index
/// just past the matching `>`. Treats `->` arrows (legal inside `Fn`
/// bounds) as opaque so their `>` does not close the list.
fn skip_generics(lexed: &LexedFile, mut i: usize) -> usize {
    if !lexed.punct_at(i, "<") {
        return i;
    }
    let mut depth = 0i32;
    let n = lexed.tokens.len();
    while i < n {
        if lexed.punct_at(i, "-") && lexed.punct_at(i + 1, ">") {
            i += 2;
            continue;
        }
        if lexed.punct_at(i, "<") {
            depth += 1;
        } else if lexed.punct_at(i, ">") {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

/// Parses one file's item structure.
pub fn parse_file(lexed: &LexedFile, rel_path: &str, file_idx: usize) -> FileSymbols {
    let krate = crate_of(rel_path);
    let toks = &lexed.tokens;
    let tests = test_regions(lexed);
    let impls = impl_regions(lexed);
    let mut out = FileSymbols::default();
    let mut i = 0;
    while i < toks.len() {
        if lexed.ident_at(i, "fn") {
            // `fn name` — a bare `fn` pointer type (`fn(u32) -> u32`)
            // has `(` next instead of a name and is skipped.
            let Some(name_tok) = toks.get(i + 1) else {
                break;
            };
            if name_tok.kind != TokKind::Ident {
                i += 1;
                continue;
            }
            let name = name_tok.text.clone();
            let line = toks[i].line;
            let mut j = skip_generics(lexed, i + 2);
            // Parameter list.
            if lexed.punct_at(j, "(") {
                let mut depth = 1u32;
                j += 1;
                while j < toks.len() && depth > 0 {
                    if lexed.punct_at(j, "(") {
                        depth += 1;
                    } else if lexed.punct_at(j, ")") {
                        depth -= 1;
                    }
                    j += 1;
                }
            }
            // Return type / where clause, up to the body or a `;`.
            while j < toks.len() && !lexed.punct_at(j, "{") && !lexed.punct_at(j, ";") {
                j += 1;
            }
            let body = if lexed.punct_at(j, "{") {
                let start = j;
                let mut depth = 1u32;
                j += 1;
                while j < toks.len() && depth > 0 {
                    if lexed.punct_at(j, "{") {
                        depth += 1;
                    } else if lexed.punct_at(j, "}") {
                        depth -= 1;
                    }
                    j += 1;
                }
                (start, j)
            } else {
                (0, 0)
            };
            out.fns.push(FnDef {
                name,
                krate: krate.clone(),
                file: file_idx,
                line,
                body,
                is_method: in_any(&impls, i),
                in_test: in_any(&tests, i),
            });
            i = j.max(i + 1);
            continue;
        }
        if lexed.ident_at(i, "use") {
            let is_pub = i > 0 && prev_is_pub(lexed, i);
            let line = toks[i].line;
            let end = parse_use_tree(lexed, i + 1, &mut Vec::new(), is_pub, line, &mut out.uses);
            i = end.max(i + 1);
            continue;
        }
        i += 1;
    }
    out
}

/// True when the tokens directly before `use` at `i` are `pub` or
/// `pub(crate)` / `pub(super)` / `pub(in ...)`.
fn prev_is_pub(lexed: &LexedFile, i: usize) -> bool {
    if lexed.ident_at(i - 1, "pub") {
        return true;
    }
    // `pub ( ... ) use`: walk back over one paren group.
    if i >= 2 && lexed.punct_at(i - 1, ")") {
        let mut j = i - 1;
        let mut depth = 0i32;
        while j > 0 {
            if lexed.punct_at(j, ")") {
                depth += 1;
            } else if lexed.punct_at(j, "(") {
                depth -= 1;
                if depth == 0 {
                    return j >= 1 && lexed.ident_at(j - 1, "pub");
                }
            }
            j -= 1;
        }
    }
    false
}

/// Parses a use tree starting at token `i` with `prefix` segments
/// already accumulated; pushes one [`UseDecl`] per leaf binding and
/// returns the index just past the tree (at its `;`, `,` or `}`).
fn parse_use_tree(
    lexed: &LexedFile,
    mut i: usize,
    prefix: &mut Vec<String>,
    is_pub: bool,
    line: u32,
    out: &mut Vec<UseDecl>,
) -> usize {
    let toks = &lexed.tokens;
    let depth_at_entry = prefix.len();
    loop {
        match toks.get(i) {
            Some(t) if t.kind == TokKind::Ident => {
                prefix.push(t.text.clone());
                i += 1;
                if lexed.punct_at(i, ":") && lexed.punct_at(i + 1, ":") {
                    i += 2;
                    continue;
                }
                // Leaf: maybe `as alias`.
                let alias = if lexed.ident_at(i, "as") {
                    if let Some(a) = toks.get(i + 1) {
                        i += 2;
                        a.text.clone()
                    } else {
                        break;
                    }
                } else {
                    prefix.last().cloned().unwrap_or_default()
                };
                out.push(UseDecl {
                    is_pub,
                    alias,
                    path: prefix.clone(),
                    line,
                });
                break;
            }
            Some(t) if t.kind == TokKind::Punct && t.text == "{" => {
                // Group: parse each comma-separated subtree, restoring
                // the group's shared prefix between elements.
                let group_depth = prefix.len();
                i += 1;
                loop {
                    if lexed.punct_at(i, "}") {
                        i += 1;
                        break;
                    }
                    let before = i;
                    i = parse_use_tree(lexed, i, prefix, is_pub, line, out);
                    prefix.truncate(group_depth);
                    if lexed.punct_at(i, ",") {
                        i += 1;
                    }
                    if i <= before {
                        // Malformed input: guarantee progress.
                        i = before + 1;
                    }
                    if i >= toks.len() {
                        break;
                    }
                }
                break;
            }
            Some(t) if t.kind == TokKind::Punct && t.text == "*" => {
                prefix.push("*".to_string());
                out.push(UseDecl {
                    is_pub,
                    alias: "*".to_string(),
                    path: prefix.clone(),
                    line,
                });
                i += 1;
                break;
            }
            Some(t) if t.kind == TokKind::Punct && t.text == ":" => {
                // Leading `::` or stray separator — skip.
                i += 1;
            }
            _ => break,
        }
    }
    prefix.truncate(depth_at_entry);
    // Advance to the end of this subtree (caller handles `,`/`}`/`;`).
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> FileSymbols {
        parse_file(&lex(src), "crates/dcsim/src/x.rs", 0)
    }

    #[test]
    fn finds_functions_with_bodies_and_methods() {
        let src = "
fn free(a: u64) -> u64 { a + 1 }
struct S;
impl S {
    pub fn method(&self) -> f64 { 0.0 }
}
trait T {
    fn declared(&self);
    fn defaulted(&self) -> u32 { 2 }
}
#[cfg(test)]
mod tests {
    fn helper() {}
}
";
        let syms = parse(src);
        let names: Vec<(&str, bool, bool)> = syms
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.is_method, f.in_test))
            .collect();
        assert_eq!(
            names,
            [
                ("free", false, false),
                ("method", true, false),
                ("declared", true, false),
                ("defaulted", true, false),
                ("helper", false, true),
            ]
        );
        let free = &syms.fns[0];
        assert!(free.body.1 > free.body.0, "free() has a body range");
        let declared = &syms.fns[2];
        assert_eq!(declared.body, (0, 0), "trait decl has no body");
    }

    #[test]
    fn generic_fn_with_fn_bound_is_parsed() {
        let syms = parse("fn apply<F: Fn(u32) -> u32>(f: F) -> u32 { f(1) }\nfn after() {}");
        let names: Vec<&str> = syms.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["apply", "after"]);
    }

    #[test]
    fn use_groups_aliases_and_globs_expand() {
        let src = "
use std::collections::{BTreeMap, BTreeSet as Set};
pub use inner::jitter as fast_jitter;
use rand::*;
";
        let syms = parse(src);
        let got: Vec<(String, String, bool)> = syms
            .uses
            .iter()
            .map(|u| (u.alias.clone(), u.path.join("::"), u.is_pub))
            .collect();
        assert_eq!(
            got,
            [
                ("BTreeMap".into(), "std::collections::BTreeMap".into(), false),
                ("Set".into(), "std::collections::BTreeSet".into(), false),
                ("fast_jitter".into(), "inner::jitter".into(), true),
                ("*".into(), "rand::*".into(), false),
            ]
        );
    }

    #[test]
    fn crate_names_normalize() {
        assert_eq!(crate_of("crates/ecocloud-core/src/policy.rs"), "ecocloud_core");
        assert_eq!(crate_of("crates/dcsim/src/engine.rs"), "dcsim");
        assert_eq!(crate_of("src/sweep.rs"), "ecocloud");
        assert_eq!(crate_of("tests/invariants.rs"), "ecocloud");
    }
}
