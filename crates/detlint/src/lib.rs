//! detlint — the workspace's determinism lint pass.
//!
//! Every figure this repository reproduces rests on one property: a
//! simulation run is a pure function of `(fleet, workload, config,
//! seed)`. The ecoCloud Bernoulli trials (paper Eqs. 1–4) are only
//! comparable across policies and sweeps because fixed-seed runs are
//! byte-identical; PRs 1–3 each maintained that by hand (golden
//! outputs, epoch-staled events, zero-draw-when-disabled RNGs).
//! `detlint` turns the hand-maintained convention into a checked
//! property: it lexes every workspace source file with a small
//! built-in lexer (no `syn`, no dependencies — the gate must build
//! offline and before everything else) and enforces rules `clippy`
//! cannot express. See [`rules`] for the rule catalogue and
//! `DESIGN.md` §12 for the rationale per rule.
//!
//! Intentional exceptions are waived in source, visibly:
//!
//! ```text
//! let x = map.iter().next(); // detlint: allow(dl003) — keys are integers
//! pub dropped_vms: u64, // detlint: unchecked-counter — monotone, no partner
//! ```
//!
//! A waiver covers its own line and the line directly below it, so a
//! waiver always sits in the same diff hunk as the code it excuses.

pub mod callgraph;
pub mod lexer;
pub mod rules;
pub mod symbols;
pub mod taint;
pub mod workspace;

use std::fmt;

/// Identifies one determinism rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// DL001 — `HashMap`/`HashSet` in simulation crates.
    HashCollections,
    /// DL002 — host RNG / host clock / environment reads in sim code.
    AmbientNondeterminism,
    /// DL003 — `partial_cmp` where `total_cmp` is required.
    FloatOrdering,
    /// DL004 — stats counter not covered by a conservation assertion.
    UncheckedCounter,
    /// DL005 — `Event` variant never dispatched by the engine.
    UnmatchedEvent,
    /// DL006 — `.unwrap()` in simulator code instead of a named
    /// invariant `expect`.
    UnwrapInSim,
    /// DL007 — float reduction over an unordered or thread-merged
    /// collection.
    UnorderedFloatReduction,
    /// DL008 — `Ord`/`PartialOrd`/`Hash` derive inconsistencies, or a
    /// manual `Ord` impl without a total-order justification.
    OrderingImpls,
    /// DL009 — `unsafe` without a `// SAFETY:` comment, including
    /// `unsafe impl Send/Sync`.
    UnsafeInventory,
    /// DL010 — shared-mutable-state primitives (`Mutex`, atomics,
    /// channels, `static mut`) in simulation crates outside the shard
    /// mailbox module. Cross-shard traffic must flow through
    /// `dcsim::shard` so the merge order stays canonical.
    CrossShardState,
}

impl RuleId {
    /// All rules, in report order.
    pub const ALL: &'static [RuleId] = &[
        RuleId::HashCollections,
        RuleId::AmbientNondeterminism,
        RuleId::FloatOrdering,
        RuleId::UncheckedCounter,
        RuleId::UnmatchedEvent,
        RuleId::UnwrapInSim,
        RuleId::UnorderedFloatReduction,
        RuleId::OrderingImpls,
        RuleId::UnsafeInventory,
        RuleId::CrossShardState,
    ];

    /// Stable diagnostic id (`DL001` ...), as printed and as matched by
    /// fixture tests.
    pub fn id(self) -> &'static str {
        match self {
            RuleId::HashCollections => "DL001",
            RuleId::AmbientNondeterminism => "DL002",
            RuleId::FloatOrdering => "DL003",
            RuleId::UncheckedCounter => "DL004",
            RuleId::UnmatchedEvent => "DL005",
            RuleId::UnwrapInSim => "DL006",
            RuleId::UnorderedFloatReduction => "DL007",
            RuleId::OrderingImpls => "DL008",
            RuleId::UnsafeInventory => "DL009",
            RuleId::CrossShardState => "DL010",
        }
    }

    /// Human-readable rule slug, also accepted (lowercased id or slug)
    /// in `detlint: allow(...)` waivers.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::HashCollections => "hash-collections",
            RuleId::AmbientNondeterminism => "ambient-nondeterminism",
            RuleId::FloatOrdering => "float-ordering",
            RuleId::UncheckedCounter => "unchecked-counter",
            RuleId::UnmatchedEvent => "unmatched-event",
            RuleId::UnwrapInSim => "unwrap-in-sim",
            RuleId::UnorderedFloatReduction => "unordered-float-reduction",
            RuleId::OrderingImpls => "ordering-impls",
            RuleId::UnsafeInventory => "unsafe-inventory",
            RuleId::CrossShardState => "cross-shard-state",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.id(), self.name())
    }
}

/// Which determinism regime a crate lives under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrateKind {
    /// The simulator and the algorithm under test (`dcsim`,
    /// `ecocloud-core`): every rule applies.
    SimCore,
    /// Deterministic library crates feeding the simulator (`metrics`,
    /// `traces`, `baselines`, `analytic`): ambient-state and float
    /// rules apply.
    Library,
    /// Entry points that may read the host environment (the CLI crate,
    /// `experiments`, `bench`, `detlint` itself): only the float rule
    /// applies.
    Entry,
}

/// One diagnostic.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The violated rule.
    pub rule: RuleId,
    /// Explanation and suggested fix.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Removes findings excused by a `detlint: allow(...)` waiver comment.
/// A trailing waiver covers only its own line; a waiver on a line of
/// its own also covers the line directly below. DL004 waivers use the
/// dedicated `unchecked-counter` form handled inside the rule.
pub fn apply_waivers(lexed: &lexer::LexedFile, findings: &mut Vec<Finding>) {
    let mut waivers: Vec<(u32, bool, Vec<String>)> = Vec::new();
    for c in &lexed.comments {
        let Some(pos) = c.text.find("detlint:") else {
            continue;
        };
        let rest = &c.text[pos + "detlint:".len()..];
        let rest = rest.trim_start();
        if let Some(list) = rest
            .strip_prefix("allow(")
            .and_then(|r| r.find(')').map(|close| &r[..close]))
        {
            let rules = list
                .split(',')
                .map(|s| s.trim().to_ascii_lowercase())
                .filter(|s| !s.is_empty())
                .collect();
            let standalone = !lexed.tokens.iter().any(|t| t.line == c.line);
            waivers.push((c.line, standalone, rules));
        }
    }
    findings.retain(|f| {
        !waivers.iter().any(|(line, standalone, rules)| {
            (*line == f.line || (*standalone && line + 1 == f.line))
                && rules
                    .iter()
                    .any(|r| r == &f.rule.id().to_ascii_lowercase() || r == f.rule.name())
        })
    });
}
