//! A minimal Rust lexer — just enough structure for determinism lints.
//!
//! The pass needs to see identifiers, punctuation and comments with
//! accurate line numbers, while *never* mistaking the contents of a
//! string literal or a comment for code (rule names, diagnostics and
//! documentation all mention the very constructs the rules forbid).
//! A full parse is not required: every rule matches short token
//! sequences, so a lossy token stream with correct string/comment
//! handling is sufficient and keeps the linter dependency-free.

/// What a token is, to the granularity the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `fn`, `partial_cmp`, ...).
    Ident,
    /// A single punctuation character (`:`, `!`, `(`, `.`, ...).
    Punct,
    /// A string, char, byte or numeric literal (contents opaque).
    Literal,
    /// A lifetime (`'a`) — kept distinct so `'a` is never a char.
    Lifetime,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification of the token.
    pub kind: TokKind,
    /// The token's text (for literals, the raw source slice).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// A comment with its 1-based source line (text excludes the `//` /
/// `/*` markers).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment body, marker characters stripped.
    pub text: String,
}

/// Token stream plus the comments that were stripped from it.
#[derive(Debug, Clone, Default)]
pub struct LexedFile {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order (doc comments included).
    pub comments: Vec<Comment>,
}

impl LexedFile {
    /// True when the token at `idx` is an identifier equal to `s`.
    pub fn ident_at(&self, idx: usize, s: &str) -> bool {
        self.tokens
            .get(idx)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text == s)
    }

    /// True when the token at `idx` is punctuation equal to `s`.
    pub fn punct_at(&self, idx: usize, s: &str) -> bool {
        self.tokens
            .get(idx)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == s)
    }

    /// True when tokens starting at `idx` spell `path` segments joined
    /// by `::` (e.g. `["SystemTime", "now"]` matches `SystemTime::now`).
    pub fn path_at(&self, idx: usize, path: &[&str]) -> bool {
        let mut i = idx;
        for (k, seg) in path.iter().enumerate() {
            if k > 0 {
                if !(self.punct_at(i, ":") && self.punct_at(i + 1, ":")) {
                    return false;
                }
                i += 2;
            }
            if !self.ident_at(i, seg) {
                return false;
            }
            i += 1;
        }
        true
    }
}

/// Lexes `src` into tokens and comments.
///
/// Handles the lexical features that matter for not misreading code:
/// line comments, nested block comments, string / raw-string / byte /
/// char literals with escapes, lifetimes vs char literals, and numeric
/// literals. Anything unrecognized becomes single-character
/// punctuation, which is harmless for sequence matching.
pub fn lex(src: &str) -> LexedFile {
    let bytes = src.as_bytes();
    let mut out = LexedFile::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < bytes.len() {
        // Decode the real character: the first *byte* of a multibyte
        // sequence cast to `char` misclassifies (e.g. the lead byte of
        // `«` looks alphabetic), which once produced a zero-length
        // "identifier" and a lexer that never advanced.
        let c = match src[i..].chars().next() {
            Some(c) => c,
            None => break,
        };
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += c.len_utf8(),
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: src[start..i].trim_start_matches(['/', '!']).to_string(),
                });
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1u32;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                // An unterminated comment runs to EOF: `i - 2` would
                // then point two bytes back — possibly mid-character.
                let end = if depth == 0 {
                    i.saturating_sub(2).max(start)
                } else {
                    bytes.len()
                };
                out.comments.push(Comment {
                    line: start_line,
                    text: src[start..end].to_string(),
                });
            }
            '"' => {
                let (len, newlines) = skip_string(&src[i..]);
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    text: src[i..i + len].to_string(),
                    line,
                });
                line += newlines;
                i += len;
            }
            'r' | 'b' | 'c' if prefixed_literal(&src[i..]).is_some() => {
                let (skip, raw) = prefixed_literal(&src[i..]).unwrap();
                let (len, newlines) = if raw {
                    // `skip` points past the prefix letters; the raw
                    // scanner wants to see the `#`s and quote itself.
                    skip_raw_string(&src[i + skip..])
                } else {
                    skip_string(&src[i + skip..])
                };
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    text: src[i..i + skip + len].to_string(),
                    line,
                });
                line += newlines;
                i += skip + len;
            }
            '\'' => {
                // Lifetime or char literal. `'a` followed by anything
                // but a closing quote is a lifetime; otherwise a char.
                let rest = &src[i + 1..];
                let mut chars = rest.chars();
                let first = chars.next().unwrap_or('\0');
                let second = chars.next().unwrap_or('\0');
                if (first.is_alphabetic() || first == '_') && second != '\'' {
                    let mut len = 1;
                    for ch in rest.chars() {
                        if ch.is_alphanumeric() || ch == '_' {
                            len += ch.len_utf8();
                        } else {
                            break;
                        }
                    }
                    out.tokens.push(Token {
                        kind: TokKind::Lifetime,
                        text: src[i..i + len].to_string(),
                        line,
                    });
                    i += len;
                } else {
                    let len = skip_char_literal(&src[i..]);
                    out.tokens.push(Token {
                        kind: TokKind::Literal,
                        text: src[i..i + len].to_string(),
                        line,
                    });
                    i += len;
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut len = 0;
                for ch in src[i..].chars() {
                    if ch.is_alphanumeric() || ch == '_' {
                        len += ch.len_utf8();
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: TokKind::Ident,
                    text: src[i..i + len].to_string(),
                    line,
                });
                i += len;
            }
            c if c.is_ascii_digit() => {
                // Numeric literal: digits / `_` / suffix letters, a
                // fractional part only when the `.` is followed by a
                // digit (so `0..n` stays a range and `x.1.partial_cmp`
                // keeps its method call), and a signed exponent.
                let b = src[i..].as_bytes();
                let mut len = 0usize;
                let run = |b: &[u8], mut k: usize| {
                    while k < b.len()
                        && (b[k].is_ascii_alphanumeric()
                            || b[k] == b'_'
                            || ((b[k] == b'+' || b[k] == b'-')
                                && k > 0
                                && (b[k - 1] == b'e' || b[k - 1] == b'E')))
                    {
                        k += 1;
                    }
                    k
                };
                len = run(b, len);
                if b.get(len) == Some(&b'.') && b.get(len + 1).is_some_and(|c| c.is_ascii_digit()) {
                    len = run(b, len + 1);
                }
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    text: src[i..i + len].to_string(),
                    line,
                });
                i += len;
            }
            _ => {
                out.tokens.push(Token {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line,
                });
                i += c.len_utf8();
            }
        }
    }
    out
}

/// Recognizes a string-literal prefix at the start of `s`: `b"`, `c"`,
/// `r"`, `br"`, `rb"`, `cr"`, or a raw form with `#`s (`r#"`, `br##"`,
/// ...). Returns `(prefix letter count, is_raw)` — for raw literals the
/// returned length covers only the letters, so the raw scanner still
/// sees the `#`s and the opening quote. `None` means `s` starts with an
/// ordinary identifier (`raw_data`, `break`, ...).
fn prefixed_literal(s: &str) -> Option<(usize, bool)> {
    let bytes = s.as_bytes();
    let mut letters = 0usize;
    let mut raw = false;
    while letters < 2 {
        match bytes.get(letters) {
            Some(b'r') if !raw => raw = true,
            Some(b'b') | Some(b'c') if letters == 0 => {}
            _ => break,
        }
        letters += 1;
    }
    if letters == 0 {
        return None;
    }
    let mut j = letters;
    if raw {
        while bytes.get(j) == Some(&b'#') {
            j += 1;
        }
    }
    if bytes.get(j) == Some(&b'"') {
        Some((letters, raw))
    } else {
        None
    }
}

/// Length in bytes of the `"..."` literal at the start of `s`, plus
/// the number of newlines inside it.
fn skip_string(s: &str) -> (usize, u32) {
    let mut len = 1; // opening quote
    let mut newlines = 0;
    let mut escaped = false;
    for ch in s[1..].chars() {
        len += ch.len_utf8();
        if escaped {
            escaped = false;
            continue;
        }
        match ch {
            '\\' => escaped = true,
            '\n' => newlines += 1,
            '"' => return (len, newlines),
            _ => {}
        }
    }
    (len, newlines)
}

/// Length in bytes of the raw literal `#*"..."#*` at the start of `s`
/// (after any `r`/`b`/`c` prefix has been consumed by the caller when
/// `s` starts with `#` or `"`), plus newlines inside it.
fn skip_raw_string(s: &str) -> (usize, u32) {
    let hashes = s.chars().take_while(|&c| c == '#').count();
    let mut closer = String::from("\"");
    closer.push_str(&"#".repeat(hashes));
    let body_start = hashes + 1; // hashes + opening quote
    if let Some(pos) = s[body_start..].find(&closer) {
        let end = body_start + pos + closer.len();
        let newlines = s[..end].matches('\n').count() as u32;
        (end, newlines)
    } else {
        (s.len(), s.matches('\n').count() as u32)
    }
}

/// Length in bytes of the char literal `'...'` at the start of `s`.
fn skip_char_literal(s: &str) -> usize {
    let mut len = 1;
    let mut escaped = false;
    for ch in s[1..].chars() {
        len += ch.len_utf8();
        if escaped {
            escaped = false;
            continue;
        }
        match ch {
            '\\' => escaped = true,
            '\'' => return len,
            _ => {}
        }
    }
    len
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            // HashMap in a comment
            /* thread_rng in /* a nested */ block */
            let x = "HashMap::new()";
            let y = r#"Instant::now()"#;
            let z = 'h';
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.iter().any(|s| s == "HashMap"));
        assert!(!ids.iter().any(|s| s == "thread_rng"));
        assert!(!ids.iter().any(|s| s == "Instant"));
    }

    #[test]
    fn comments_are_collected_with_lines() {
        let lexed = lex("let a = 1;\n// detlint: allow(dl003) why\nlet b = 2;\n");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 2);
        assert!(lexed.comments[0].text.contains("detlint: allow"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 3);
    }

    #[test]
    fn path_matching_sees_through_whitespace() {
        let lexed = lex("let t = SystemTime :: now ();");
        let idx = lexed
            .tokens
            .iter()
            .position(|t| t.text == "SystemTime")
            .unwrap();
        assert!(lexed.path_at(idx, &["SystemTime", "now"]));
        assert!(!lexed.path_at(idx, &["SystemTime", "later"]));
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let s = \"line\nline\nline\";\nafter();";
        let lexed = lex(src);
        let after = lexed.tokens.iter().find(|t| t.text == "after").unwrap();
        assert_eq!(after.line, 4);
    }

    #[test]
    fn numeric_ranges_do_not_swallow_dots() {
        let lexed = lex("for i in 0..n {}");
        assert!(lexed.tokens.iter().any(|t| t.text == "n"));
        let dots = lexed.tokens.iter().filter(|t| t.text == ".").count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn multibyte_punctuation_makes_progress() {
        // The lead byte of `«` (0xC2) cast to char is alphabetic; the
        // old byte-at-a-time decode produced an empty identifier here
        // and looped forever. Guillemets, em-dashes and NBSP must all
        // lex to something and terminate.
        let lexed = lex("let a = «b» — c;\u{a0}done();");
        assert!(lexed.tokens.iter().any(|t| t.text == "done"));
        assert!(lexed.tokens.iter().all(|t| !t.text.is_empty()));
    }

    #[test]
    fn unterminated_nested_comment_does_not_panic() {
        // Runs to EOF with a multibyte char in the tail: the comment
        // end must clamp to the buffer, not slice two bytes back.
        let lexed = lex("fn f() {}\n/* outer /* inner */ still open €");
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("still open"));
        assert!(lexed.tokens.iter().any(|t| t.text == "f"));
    }

    #[test]
    fn byte_and_c_string_literals_hide_contents() {
        let src = r##"
            let a = b"thread_rng bytes";
            let b = br#"HashMap raw bytes"#;
            let c = c"Instant::now c string";
            let d = rb"SystemTime reversed prefix";
            after();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"after".to_string()));
        for banned in ["thread_rng", "HashMap", "Instant", "SystemTime"] {
            assert!(!ids.iter().any(|s| s == banned), "{banned} leaked");
        }
    }

    #[test]
    fn raw_identifiers_are_not_raw_strings() {
        let lexed = lex("let r#match = r#struct + rng;");
        assert!(lexed.tokens.iter().any(|t| t.text == "rng"));
        assert!(lexed
            .tokens
            .iter()
            .all(|t| t.kind != TokKind::Literal || !t.text.contains("match")));
    }

    #[test]
    fn unterminated_string_runs_to_eof() {
        let lexed = lex("let s = \"never closed\nnext_line();");
        // The whole tail is one literal; nothing after the quote leaks
        // out as an identifier, and the lexer terminates.
        assert!(!lexed.tokens.iter().any(|t| t.text == "next_line"));
    }
}
