//! CLI entry point: `cargo run -p detlint -- --workspace`.

use std::path::PathBuf;
use std::process::ExitCode;

use detlint::{workspace, Finding, RuleId};

const USAGE: &str = "\
detlint — determinism lint for the ecoCloud workspace

USAGE:
    detlint --workspace [--root <dir>] [--json]   lint the whole workspace
    detlint [--root <dir>] [--json] <file>...     lint individual files
    detlint --list-rules                          print the rule catalogue

`--json` prints one object: {\"findings\": [{file, line, rule, name,
message}...], \"warnings\": [...]}, findings stably sorted by
(file, line, rule).

Exit status: 0 clean, 1 findings, 2 usage or I/O error.";

/// Minimal JSON string escaping (the output has no nested structure
/// beyond strings and integers, so no serializer dependency).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn print_json(findings: &[Finding], warnings: &[String]) {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"name\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&f.file),
            f.line,
            f.rule.id(),
            f.rule.name(),
            json_escape(&f.message)
        ));
    }
    out.push_str("],\"warnings\":[");
    for (i, w) in warnings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\"", json_escape(w)));
    }
    out.push_str("]}");
    println!("{out}");
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut files: Vec<String> = Vec::new();
    let mut whole_workspace = false;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workspace" => whole_workspace = true,
            "--json" => json = true,
            "--list-rules" => {
                for &r in RuleId::ALL {
                    println!("{r}");
                }
                return ExitCode::SUCCESS;
            }
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(p) => root = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("--root needs a path\n\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            f if !f.starts_with('-') => files.push(f.to_string()),
            other => {
                eprintln!("unknown flag {other}\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    if !whole_workspace && files.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let root = root
        .or_else(|| {
            // Under `cargo run` the manifest dir is crates/detlint;
            // otherwise start from the current directory.
            #[allow(clippy::disallowed_methods)] // entry crate: cargo-provided path
            std::env::var_os("CARGO_MANIFEST_DIR")
                .map(PathBuf::from)
                .and_then(|p| workspace::find_root(&p))
        })
        .or_else(|| {
            std::env::current_dir()
                .ok()
                .and_then(|p| workspace::find_root(&p))
        });
    let Some(root) = root else {
        eprintln!("detlint: cannot locate the workspace root (pass --root)");
        return ExitCode::from(2);
    };

    let (findings, warnings) = if whole_workspace {
        match workspace::lint_workspace(&root) {
            Ok(report) => (report.findings, report.warnings),
            Err(e) => {
                eprintln!("detlint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        // Explicitly named files are linted together, so the
        // cross-crate taint pass sees wrappers among them; outside the
        // workspace layout (and in tests/fixtures/, which the
        // workspace walk skips) assume the strictest regime.
        let mut inputs: Vec<(String, detlint::CrateKind, String)> = Vec::new();
        for f in &files {
            let rel = f.replace('\\', "/");
            let kind = workspace::classify(&rel).unwrap_or(detlint::CrateKind::SimCore);
            let path = if PathBuf::from(f).is_absolute() {
                PathBuf::from(f)
            } else {
                root.join(f)
            };
            match std::fs::read_to_string(&path) {
                Ok(src) => inputs.push((rel, kind, src)),
                Err(e) => {
                    eprintln!("detlint: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
        (workspace::lint_files(&inputs), Vec::new())
    };

    if json {
        print_json(&findings, &warnings);
    } else {
        for w in &warnings {
            eprintln!("detlint: warning: {w}");
        }
        for f in &findings {
            println!("{f}");
        }
    }
    if findings.is_empty() {
        if !json {
            eprintln!("detlint: clean");
        }
        ExitCode::SUCCESS
    } else {
        if !json {
            eprintln!("detlint: {} finding(s)", findings.len());
        }
        ExitCode::FAILURE
    }
}
