//! CLI entry point: `cargo run -p detlint -- --workspace`.

use std::path::PathBuf;
use std::process::ExitCode;

use detlint::rules::FileContext;
use detlint::{workspace, RuleId};

const USAGE: &str = "\
detlint — determinism lint for the ecoCloud workspace

USAGE:
    detlint --workspace [--root <dir>]   lint the whole workspace
    detlint [--root <dir>] <file>...     lint individual files
    detlint --list-rules                 print the rule catalogue

Exit status: 0 clean, 1 findings, 2 usage or I/O error.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut files: Vec<String> = Vec::new();
    let mut whole_workspace = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workspace" => whole_workspace = true,
            "--list-rules" => {
                for &r in RuleId::ALL {
                    println!("{r}");
                }
                return ExitCode::SUCCESS;
            }
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(p) => root = Some(PathBuf::from(p)),
                    None => {
                        eprintln!("--root needs a path\n\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            f if !f.starts_with('-') => files.push(f.to_string()),
            other => {
                eprintln!("unknown flag {other}\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    if !whole_workspace && files.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    let root = root
        .or_else(|| {
            // Under `cargo run` the manifest dir is crates/detlint;
            // otherwise start from the current directory.
            #[allow(clippy::disallowed_methods)] // entry crate: cargo-provided path
            std::env::var_os("CARGO_MANIFEST_DIR")
                .map(PathBuf::from)
                .and_then(|p| workspace::find_root(&p))
        })
        .or_else(|| {
            std::env::current_dir()
                .ok()
                .and_then(|p| workspace::find_root(&p))
        });
    let Some(root) = root else {
        eprintln!("detlint: cannot locate the workspace root (pass --root)");
        return ExitCode::from(2);
    };

    let findings = if whole_workspace {
        match workspace::lint_workspace(&root) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("detlint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let mut all = Vec::new();
        for f in &files {
            let rel = f.replace('\\', "/");
            // Explicitly named files are always linted: outside the
            // workspace layout (and in tests/fixtures/, which the
            // workspace walk skips) assume the strictest regime.
            let kind = workspace::classify(&rel).unwrap_or(detlint::CrateKind::SimCore);
            let path = if PathBuf::from(f).is_absolute() {
                PathBuf::from(f)
            } else {
                root.join(f)
            };
            match std::fs::read_to_string(&path) {
                Ok(src) => {
                    let ctx = FileContext {
                        rel_path: rel,
                        kind,
                    };
                    all.extend(workspace::lint_source(&src, &ctx));
                }
                Err(e) => {
                    eprintln!("detlint: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
        all
    };

    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        eprintln!("detlint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("detlint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
