//! The determinism rules.
//!
//! Each rule protects a property an earlier PR established by hand and
//! the test suite can only probe, not prove:
//!
//! * [`RuleId::HashCollections`] (DL001) — simulation state iterates in
//!   a seed-independent order only because every container is ordered
//!   (`BTreeMap` / `SortedIdSet`). One `HashMap` iteration reorders
//!   placement scans and silently forks fixed-seed runs.
//! * [`RuleId::AmbientNondeterminism`] (DL002) — every random draw
//!   comes from a seeded RNG and every timestamp from the simulation
//!   clock. `thread_rng`, `Instant::now`, `SystemTime::now` and
//!   environment reads smuggle host state into the run.
//! * [`RuleId::FloatOrdering`] (DL003) — simulation times are ordered
//!   with `total_cmp` so a NaN produced by an upstream bug panics (or
//!   orders totally) instead of corrupting a heap or sort.
//! * [`RuleId::UncheckedCounter`] (DL004) — every counter in
//!   `dcsim::stats` is either covered by a conservation-law assertion
//!   or carries a visible waiver explaining why no law exists.
//! * [`RuleId::UnmatchedEvent`] (DL005) — every `Event` variant is
//!   dispatched in the engine; an undelivered event is a silent no-op
//!   that desynchronizes replicas of the same seed.
//! * [`RuleId::UnwrapInSim`] (DL006) — invariant lookups in `dcsim`
//!   use `expect` with a message naming the violated invariant, so a
//!   determinism bug crashes with a diagnosis instead of
//!   "called `unwrap()` on a `None` value".
//! * [`RuleId::CrossShardState`] (DL010) — the shard engine stays
//!   deterministic only because the mailbox merge in `dcsim::shard` is
//!   the *sole* cross-thread channel; any other shared-memory
//!   primitive in a simulation crate re-introduces scheduling order.

use crate::lexer::{LexedFile, TokKind};
use crate::{CrateKind, Finding, RuleId};

/// Methods whose mere presence injects ambient state (matched as a
/// bare identifier anywhere outside entry crates and test code).
const AMBIENT_IDENTS: &[&str] = &["thread_rng", "from_entropy"];

/// `Type::method` paths that read the host clock.
const AMBIENT_CLOCKS: &[(&str, &str)] = &[("SystemTime", "now"), ("Instant", "now")];

/// `env::<read>` accessors that smuggle configuration past the seed.
const ENV_READS: &[&str] = &["var", "var_os", "vars", "vars_os"];

/// Context the per-file rules need about the file being linted.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Path as reported in diagnostics (workspace-relative).
    pub rel_path: String,
    /// Which determinism regime the containing crate lives under.
    pub kind: CrateKind,
}

/// Half-open token-index ranges lying inside `#[cfg(test)]` modules or
/// `#[test]` functions.
pub fn test_regions(lexed: &LexedFile) -> Vec<(usize, usize)> {
    let toks = &lexed.tokens;
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // `#` `[` ... `]` — an outer attribute.
        if lexed.punct_at(i, "#") && lexed.punct_at(i + 1, "[") {
            let mut j = i + 2;
            let mut depth = 1u32;
            let mut saw_test = false;
            let mut saw_not = false;
            while j < toks.len() && depth > 0 {
                if lexed.punct_at(j, "[") {
                    depth += 1;
                } else if lexed.punct_at(j, "]") {
                    depth -= 1;
                } else if toks[j].kind == TokKind::Ident {
                    // `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, ..))]`
                    // mark test code; `#[cfg(not(test))]` is the
                    // opposite and must not.
                    saw_test |= toks[j].text == "test";
                    saw_not |= toks[j].text == "not";
                }
                j += 1;
            }
            let is_test_attr = saw_test && !saw_not;
            if is_test_attr {
                // Find the `{` opening the annotated item and match
                // braces to its end.
                let mut k = j;
                while k < toks.len() && !lexed.punct_at(k, "{") {
                    // A `;` first means an item with no body.
                    if lexed.punct_at(k, ";") {
                        break;
                    }
                    k += 1;
                }
                if lexed.punct_at(k, "{") {
                    let mut bd = 1u32;
                    let start = k;
                    k += 1;
                    while k < toks.len() && bd > 0 {
                        if lexed.punct_at(k, "{") {
                            bd += 1;
                        } else if lexed.punct_at(k, "}") {
                            bd -= 1;
                        }
                        k += 1;
                    }
                    regions.push((start, k));
                    i = k;
                    continue;
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
    regions
}

fn in_regions(regions: &[(usize, usize)], idx: usize) -> bool {
    regions.iter().any(|&(a, b)| idx >= a && idx < b)
}

/// DL001: `HashMap` / `HashSet` anywhere in a simulation crate.
pub fn dl001_hash_collections(lexed: &LexedFile, ctx: &FileContext, out: &mut Vec<Finding>) {
    if ctx.kind != CrateKind::SimCore {
        return;
    }
    for t in &lexed.tokens {
        if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            out.push(Finding {
                file: ctx.rel_path.clone(),
                line: t.line,
                rule: RuleId::HashCollections,
                message: format!(
                    "`{}` in a simulation crate: iteration order depends on the hasher \
                     seed, which forks fixed-seed runs. Use `BTreeMap`/`BTreeSet` or \
                     `dcsim::SortedIdSet`.",
                    t.text
                ),
            });
        }
    }
}

/// DL002: ambient nondeterminism (host RNG, host clock, environment
/// reads) outside entry crates; `#[cfg(test)]` / `#[test]` code is
/// exempt (tests may stage temp files etc.).
pub fn dl002_ambient_nondeterminism(lexed: &LexedFile, ctx: &FileContext, out: &mut Vec<Finding>) {
    if ctx.kind == CrateKind::Entry {
        return;
    }
    let tests = test_regions(lexed);
    for (i, t) in lexed.tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || in_regions(&tests, i) {
            continue;
        }
        let mut flag: Option<String> = None;
        if AMBIENT_IDENTS.contains(&t.text.as_str()) {
            flag = Some(format!(
                "`{}` seeds from the host: every random draw must come from the \
                 simulation's own seeded RNG.",
                t.text
            ));
        } else {
            for &(ty, m) in AMBIENT_CLOCKS {
                if t.text == ty && lexed.path_at(i, &[ty, m]) {
                    flag = Some(format!(
                        "`{ty}::{m}` reads the host clock: simulation code must only \
                         observe the simulated clock (`self.now`)."
                    ));
                }
            }
            if t.text == "env" {
                for &rd in ENV_READS {
                    if lexed.path_at(i, &["env", rd]) {
                        flag = Some(format!(
                            "`env::{rd}` reads host configuration: runs must be a pure \
                             function of explicit config + seed. Plumb the value through \
                             the CLI crate instead."
                        ));
                    }
                }
            }
        }
        if let Some(message) = flag {
            out.push(Finding {
                file: ctx.rel_path.clone(),
                line: t.line,
                rule: RuleId::AmbientNondeterminism,
                message,
            });
        }
    }
}

/// DL003: `partial_cmp` call sites (float ordering must be total).
/// Definitions (`fn partial_cmp`) are exempt — a `PartialOrd` impl
/// that delegates to `Ord`/`total_cmp` is precisely the sanctioned
/// pattern.
pub fn dl003_float_ordering(lexed: &LexedFile, ctx: &FileContext, out: &mut Vec<Finding>) {
    for (i, t) in lexed.tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "partial_cmp" {
            continue;
        }
        if i > 0 && lexed.ident_at(i - 1, "fn") {
            continue;
        }
        let _ = ctx;
        out.push(Finding {
            file: ctx.rel_path.clone(),
            line: t.line,
            rule: RuleId::FloatOrdering,
            message: "`partial_cmp` on simulation quantities: a NaN here returns `None` \
                      and silently corrupts an ordering. Use `f64::total_cmp` (PR 1 made \
                      the event queue total for exactly this reason)."
                .to_string(),
        });
    }
}

/// DL006: `.unwrap()` in non-test `dcsim` code — hot-path lookups must
/// `expect` a message naming the violated invariant.
pub fn dl006_unwrap_in_sim(lexed: &LexedFile, ctx: &FileContext, out: &mut Vec<Finding>) {
    if ctx.kind != CrateKind::SimCore {
        return;
    }
    let tests = test_regions(lexed);
    for (i, t) in lexed.tokens.iter().enumerate() {
        if t.kind == TokKind::Ident
            && t.text == "unwrap"
            && i > 0
            && lexed.punct_at(i - 1, ".")
            && lexed.punct_at(i + 1, "(")
            && !in_regions(&tests, i)
        {
            out.push(Finding {
                file: ctx.rel_path.clone(),
                line: t.line,
                rule: RuleId::UnwrapInSim,
                message: "`.unwrap()` in simulator code: use `.expect(\"<invariant>\")` so \
                          a determinism bug crashes with a diagnosis, not \
                          \"called `Option::unwrap()` on a `None` value\"."
                    .to_string(),
            });
        }
    }
}

/// DL007: float-reduction order. `.sum()/.product()/.fold()/.reduce()`
/// whose receiver chain (back to the statement boundary) mentions an
/// unordered or thread-merged source — a std hash collection, a rayon
/// parallel iterator, or an mpsc `try_iter` drain. Float addition is
/// not associative, so reducing in collection/completion order forks
/// fixed-seed runs. Applies in non-entry crates and in the named
/// parallel-runtime files of the CLI crate (`src/parallel.rs`,
/// `src/sweep.rs`) — exactly the places a sharded engine would merge.
pub fn dl007_unordered_float_reduction(
    lexed: &LexedFile,
    ctx: &FileContext,
    out: &mut Vec<Finding>,
) {
    const REDUCERS: &[&str] = &["sum", "product", "fold", "reduce"];
    const UNORDERED: &[&str] = &[
        "HashMap",
        "HashSet",
        "RandomState",
        "par_iter",
        "into_par_iter",
        "par_bridge",
        "par_chunks",
        "try_iter",
    ];
    let applies = ctx.kind != CrateKind::Entry
        || ctx.rel_path == "src/parallel.rs"
        || ctx.rel_path == "src/sweep.rs";
    if !applies {
        return;
    }
    let tests = test_regions(lexed);
    // Names bound to a hash collection anywhere in the file — `m:
    // &HashMap<..>` parameters and `let m: HashMap` / `m = HashMap`
    // bindings — so `m.values().sum()` is caught even though the type
    // name is not in the receiver chain. Name-level, so deliberately
    // coarse: a false hit is a waiver away, a miss forks a run.
    let mut hash_named: Vec<&str> = Vec::new();
    for (i, t) in lexed.tokens.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        if lexed.punct_at(i + 1, ":") || lexed.punct_at(i + 1, "=") {
            for k in (i + 2)..(i + 6).min(lexed.tokens.len()) {
                let u = &lexed.tokens[k];
                if u.kind == TokKind::Ident && (u.text == "HashMap" || u.text == "HashSet") {
                    hash_named.push(&t.text);
                    break;
                }
            }
        }
    }
    hash_named.sort_unstable();
    hash_named.dedup();
    for (i, t) in lexed.tokens.iter().enumerate() {
        if t.kind != TokKind::Ident
            || !REDUCERS.contains(&t.text.as_str())
            || i == 0
            || !lexed.punct_at(i - 1, ".")
            || in_regions(&tests, i)
        {
            continue;
        }
        // `(` directly, or through a `::<f64>` turbofish.
        let mut after = i + 1;
        if lexed.punct_at(after, ":") && lexed.punct_at(after + 1, ":") && lexed.punct_at(after + 2, "<")
        {
            let mut depth = 0i32;
            let mut j = after + 2;
            while j < lexed.tokens.len() {
                if lexed.punct_at(j, "<") {
                    depth += 1;
                } else if lexed.punct_at(j, ">") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            after = j + 1;
        }
        if !lexed.punct_at(after, "(") {
            continue;
        }
        // Back-scan the receiver chain to the statement boundary.
        let mut j = i - 1;
        let mut hit: Option<&str> = None;
        let mut steps = 0;
        while j > 0 && steps < 96 {
            j -= 1;
            steps += 1;
            let p = &lexed.tokens[j];
            if p.kind == TokKind::Punct && (p.text == ";" || p.text == "{" || p.text == "}") {
                break;
            }
            if p.kind == TokKind::Ident && UNORDERED.contains(&p.text.as_str()) {
                hit = Some(UNORDERED[UNORDERED.iter().position(|u| *u == p.text).expect("hit")]);
                break;
            }
            if p.kind == TokKind::Ident && hash_named.binary_search(&p.text.as_str()).is_ok() {
                hit = Some("hash-typed binding");
                break;
            }
        }
        if let Some(src) = hit {
            out.push(Finding {
                file: ctx.rel_path.clone(),
                line: t.line,
                rule: RuleId::UnorderedFloatReduction,
                message: format!(
                    "`.{}()` over a `{src}` source reduces in collection/completion \
                     order; float addition is not associative, so this forks fixed-seed \
                     runs. Collect into a `Vec`, sort by a total key (submission order), \
                     then reduce.",
                    t.text
                ),
            });
        }
    }
}

/// DL008: ordering-impl consistency. In simulation and library crates:
/// `derive(PartialOrd)` without `Ord` leaves `sort`/`max_by` partial;
/// `derive(Hash)` without `Eq` breaks the `Hash`/`Eq` contract; a
/// manual `impl Ord` must carry a comment containing "total" (naming
/// the total-order justification, cf. `events::Scheduled`), and a
/// manual `impl PartialOrd` must delegate to `cmp`/`total_cmp` rather
/// than re-deriving its own partial order.
pub fn dl008_ordering_impls(lexed: &LexedFile, ctx: &FileContext, out: &mut Vec<Finding>) {
    if ctx.kind == CrateKind::Entry {
        return;
    }
    let toks = &lexed.tokens;
    // Derive lists.
    let mut i = 0;
    while i < toks.len() {
        if lexed.punct_at(i, "#")
            && lexed.punct_at(i + 1, "[")
            && lexed.ident_at(i + 2, "derive")
            && lexed.punct_at(i + 3, "(")
        {
            let line = toks[i + 2].line;
            let mut names: Vec<&str> = Vec::new();
            let mut j = i + 4;
            let mut depth = 1u32;
            while j < toks.len() && depth > 0 {
                if lexed.punct_at(j, "(") {
                    depth += 1;
                } else if lexed.punct_at(j, ")") {
                    depth -= 1;
                } else if toks[j].kind == TokKind::Ident {
                    names.push(&toks[j].text);
                }
                j += 1;
            }
            let has = |n: &str| names.iter().any(|x| *x == n);
            if has("PartialOrd") && !has("Ord") {
                out.push(Finding {
                    file: ctx.rel_path.clone(),
                    line,
                    rule: RuleId::OrderingImpls,
                    message: "`derive(PartialOrd)` without `Ord`: comparisons stay \
                              partial, so sorts and heaps silently depend on NaN-free \
                              inputs. Derive `Ord` too (or implement a total order by \
                              hand)."
                        .to_string(),
                });
            }
            if has("Hash") && !has("Eq") {
                out.push(Finding {
                    file: ctx.rel_path.clone(),
                    line,
                    rule: RuleId::OrderingImpls,
                    message: "`derive(Hash)` without `Eq` breaks the `k1 == k2 ⇒ \
                              hash(k1) == hash(k2)` contract lookups rely on; derive \
                              `Eq` as well."
                        .to_string(),
                });
            }
            i = j;
            continue;
        }
        i += 1;
    }
    // Manual impls: `[impl] ... Ord for` / `PartialOrd for`.
    for i in 0..toks.len() {
        let name = toks[i].text.as_str();
        if toks[i].kind != TokKind::Ident
            || (name != "Ord" && name != "PartialOrd")
            || !lexed.ident_at(i + 1, "for")
        {
            continue;
        }
        // Find the impl body.
        let mut j = i + 2;
        while j < toks.len() && !lexed.punct_at(j, "{") {
            j += 1;
        }
        let body_start = j;
        let mut depth = 0u32;
        while j < toks.len() {
            if lexed.punct_at(j, "{") {
                depth += 1;
            } else if lexed.punct_at(j, "}") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        let end_line = toks.get(j).map(|t| t.line).unwrap_or(u32::MAX);
        if name == "Ord" {
            let justified = lexed.comments.iter().any(|c| {
                c.line + 3 >= toks[i].line && c.line <= end_line && c.text.contains("total")
            });
            if !justified {
                out.push(Finding {
                    file: ctx.rel_path.clone(),
                    line: toks[i].line,
                    rule: RuleId::OrderingImpls,
                    message: "manual `impl Ord` without a total-order justification: \
                              add a comment containing \"total\" stating why the order \
                              is total (ties broken, floats via `total_cmp` — see \
                              `events::Scheduled`)."
                        .to_string(),
                });
            }
        } else {
            // Delegation means a real `.cmp(` / `.total_cmp(` call —
            // a bare `std::cmp::Ordering` path must not count.
            let delegates = (body_start..=j.min(toks.len().saturating_sub(1))).any(|k| {
                toks[k].kind == TokKind::Ident
                    && (toks[k].text == "cmp" || toks[k].text == "total_cmp")
                    && k > 0
                    && lexed.punct_at(k - 1, ".")
                    && lexed.punct_at(k + 1, "(")
            });
            if !delegates {
                out.push(Finding {
                    file: ctx.rel_path.clone(),
                    line: toks[i].line,
                    rule: RuleId::OrderingImpls,
                    message: "manual `impl PartialOrd` that does not delegate to \
                              `cmp`/`total_cmp`: two independent orderings drift apart. \
                              Write `Some(self.cmp(other))`."
                        .to_string(),
                });
            }
        }
    }
}

/// DL009: `unsafe` inventory. Every `unsafe` keyword — blocks, fns,
/// and especially `unsafe impl Send/Sync` — must carry a `// SAFETY:`
/// comment on its line or within the three lines above, so the proof
/// obligation is visible in the same diff hunk. Applies everywhere:
/// the parallel runner and any future sharded engine live or die by
/// these proofs.
pub fn dl009_unsafe_inventory(lexed: &LexedFile, ctx: &FileContext, out: &mut Vec<Finding>) {
    for (i, t) in lexed.tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        let documented = lexed
            .comments
            .iter()
            .any(|c| c.line + 3 >= t.line && c.line <= t.line && c.text.contains("SAFETY:"));
        if documented {
            continue;
        }
        let what = if lexed.ident_at(i + 1, "impl") {
            "`unsafe impl` (a Send/Sync promise the compiler cannot check)"
        } else if lexed.ident_at(i + 1, "fn") {
            "`unsafe fn`"
        } else {
            "`unsafe` block"
        };
        out.push(Finding {
            file: ctx.rel_path.clone(),
            line: t.line,
            rule: RuleId::UnsafeInventory,
            message: format!(
                "{what} without a `// SAFETY:` comment: state the invariant that makes \
                 this sound on the line above (see the prefetch in `events.rs`)."
            ),
        });
    }
}

/// DL010: shared-mutable-state primitives in simulation crates. The
/// shard engine's determinism proof rests on there being exactly one
/// cross-thread communication channel — the `dcsim::shard` mailboxes,
/// drained in canonical `(key, shard)` order. A `Mutex`, an atomic, or
/// an mpsc channel anywhere else in `dcsim`/`ecocloud-core` would let
/// worker interleaving leak into simulation state, so every one of
/// them is flagged outside the waived mailbox module itself.
/// `#[cfg(test)]` code is exempt (tests may coordinate threads to
/// stage a scenario).
pub fn dl010_cross_shard_state(lexed: &LexedFile, ctx: &FileContext, out: &mut Vec<Finding>) {
    if ctx.kind != CrateKind::SimCore {
        return;
    }
    // The one blessed module: the mailbox / fork-join executor itself.
    if ctx.rel_path.ends_with("dcsim/src/shard.rs") {
        return;
    }
    const BANNED: &[&str] = &[
        "Mutex", "RwLock", "Condvar", "Barrier", "UnsafeCell", "OnceLock", "LazyLock", "mpsc",
    ];
    let tests = test_regions(lexed);
    for (i, t) in lexed.tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || in_regions(&tests, i) {
            continue;
        }
        let shared = BANNED.contains(&t.text.as_str()) || t.text.starts_with("Atomic");
        let static_mut = t.text == "static" && lexed.ident_at(i + 1, "mut");
        if shared || static_mut {
            let what = if static_mut {
                "`static mut`".to_string()
            } else {
                format!("`{}`", t.text)
            };
            out.push(Finding {
                file: ctx.rel_path.clone(),
                line: t.line,
                rule: RuleId::CrossShardState,
                message: format!(
                    "{what} in a simulation crate: cross-shard state must flow through \
                     the `dcsim::shard` mailbox API (push per-shard, drain in canonical \
                     order), never through shared-memory primitives whose observed order \
                     depends on thread scheduling."
                ),
            });
        }
    }
}

/// The identifiers appearing inside non-test `assert!`-family macro
/// invocations of a file — DL004's definition of "covered by a
/// conservation-law assertion".
pub fn assert_idents(lexed: &LexedFile) -> Vec<String> {
    const ASSERT_MACROS: &[&str] = &[
        "assert",
        "assert_eq",
        "assert_ne",
        "debug_assert",
        "debug_assert_eq",
        "debug_assert_ne",
    ];
    let tests = test_regions(lexed);
    let mut out = Vec::new();
    let toks = &lexed.tokens;
    let mut i = 0;
    while i < toks.len() {
        let is_assert = toks[i].kind == TokKind::Ident
            && ASSERT_MACROS.contains(&toks[i].text.as_str())
            && lexed.punct_at(i + 1, "!")
            && lexed.punct_at(i + 2, "(")
            && !in_regions(&tests, i);
        if !is_assert {
            i += 1;
            continue;
        }
        let mut depth = 1u32;
        let mut j = i + 3;
        while j < toks.len() && depth > 0 {
            if lexed.punct_at(j, "(") {
                depth += 1;
            } else if lexed.punct_at(j, ")") {
                depth -= 1;
            } else if toks[j].kind == TokKind::Ident {
                out.push(toks[j].text.clone());
            }
            j += 1;
        }
        i = j;
    }
    out.sort();
    out.dedup();
    out
}

/// The `u64` counter fields of the first `struct SimStats` in a lexed
/// `stats.rs`, as `(name, line, waived)` — `waived` when the field's
/// line (or the line above) carries a `detlint: unchecked-counter`
/// comment.
pub fn counter_fields(lexed: &LexedFile) -> Vec<(String, u32, bool)> {
    let toks = &lexed.tokens;
    // Locate `struct SimStats {`.
    let mut start = None;
    for i in 0..toks.len() {
        if lexed.ident_at(i, "struct") && lexed.ident_at(i + 1, "SimStats") {
            let mut j = i + 2;
            while j < toks.len() && !lexed.punct_at(j, "{") {
                j += 1;
            }
            start = Some(j + 1);
            break;
        }
    }
    let Some(mut i) = start else {
        return Vec::new();
    };
    // (line, standalone): a trailing waiver covers only its own field;
    // a comment-only line also covers the field directly below.
    let waiver_lines: Vec<(u32, bool)> = lexed
        .comments
        .iter()
        .filter(|c| c.text.contains("detlint:") && c.text.contains("unchecked-counter"))
        .map(|c| (c.line, !lexed.tokens.iter().any(|t| t.line == c.line)))
        .collect();
    let mut fields = Vec::new();
    let mut depth = 1u32;
    while i < toks.len() && depth > 0 {
        if lexed.punct_at(i, "{") {
            depth += 1;
            i += 1;
            continue;
        }
        if lexed.punct_at(i, "}") {
            depth -= 1;
            i += 1;
            continue;
        }
        // A field at struct depth: `[pub] name : Type ,` — detect the
        // `name : u64` shape and skip to the comma at depth 1.
        if depth == 1 && toks[i].kind == TokKind::Ident && lexed.punct_at(i + 1, ":") {
            let name = toks[i].text.clone();
            let line = toks[i].line;
            if name != "pub" && lexed.ident_at(i + 2, "u64") {
                // A waiver counts on the field's own line (trailing
                // comment) or on a comment-only line directly above.
                let waived = waiver_lines
                    .iter()
                    .any(|&(wl, standalone)| wl == line || (standalone && wl + 1 == line));
                fields.push((name, line, waived));
            }
        }
        i += 1;
    }
    fields
}

/// DL004: each `u64` counter in `SimStats` must appear in an assertion
/// somewhere in the simulator or carry an `unchecked-counter` waiver.
pub fn dl004_unchecked_counters(
    stats: &LexedFile,
    stats_rel_path: &str,
    asserted: &[String],
    out: &mut Vec<Finding>,
) {
    for (name, line, waived) in counter_fields(stats) {
        if waived || asserted.iter().any(|a| a == &name) {
            continue;
        }
        out.push(Finding {
            file: stats_rel_path.to_string(),
            line,
            rule: RuleId::UncheckedCounter,
            message: format!(
                "counter `{name}` is not referenced by any conservation-law assertion; \
                 add it to one in `engine.rs` or waive it with \
                 `// detlint: unchecked-counter — <why no law exists>`."
            ),
        });
    }
}

/// The variant names of `pub enum Event` in a lexed `events.rs`, with
/// their lines.
pub fn event_variants(lexed: &LexedFile) -> Vec<(String, u32)> {
    let toks = &lexed.tokens;
    let mut start = None;
    for i in 0..toks.len() {
        if lexed.ident_at(i, "enum") && lexed.ident_at(i + 1, "Event") {
            let mut j = i + 2;
            while j < toks.len() && !lexed.punct_at(j, "{") {
                j += 1;
            }
            start = Some(j + 1);
            break;
        }
    }
    let Some(mut i) = start else {
        return Vec::new();
    };
    let mut variants = Vec::new();
    let mut depth = 1u32;
    let mut expect_variant = true;
    while i < toks.len() && depth > 0 {
        if lexed.punct_at(i, "{") || lexed.punct_at(i, "(") {
            depth += 1;
        } else if lexed.punct_at(i, "}") || lexed.punct_at(i, ")") {
            depth -= 1;
        } else if depth == 1 {
            if expect_variant && toks[i].kind == TokKind::Ident {
                variants.push((toks[i].text.clone(), toks[i].line));
                expect_variant = false;
            } else if lexed.punct_at(i, ",") {
                expect_variant = true;
            }
        }
        i += 1;
    }
    variants
}

/// DL005: each `Event` variant must be matched (as `Event::Variant`)
/// in the engine's dispatch.
pub fn dl005_unmatched_events(
    events: &LexedFile,
    events_rel_path: &str,
    engine: &LexedFile,
    out: &mut Vec<Finding>,
) {
    let mut dispatched: Vec<&str> = Vec::new();
    for (i, t) in engine.tokens.iter().enumerate() {
        if t.kind == TokKind::Ident
            && t.text == "Event"
            && engine.punct_at(i + 1, ":")
            && engine.punct_at(i + 2, ":")
        {
            if let Some(v) = engine.tokens.get(i + 3) {
                if v.kind == TokKind::Ident {
                    dispatched.push(&v.text);
                }
            }
        }
    }
    for (variant, line) in event_variants(events) {
        if !dispatched.iter().any(|d| *d == variant) {
            out.push(Finding {
                file: events_rel_path.to_string(),
                line,
                rule: RuleId::UnmatchedEvent,
                message: format!(
                    "event variant `{variant}` is never dispatched as `Event::{variant}` \
                     in `engine.rs`; an unhandled event is a silent no-op that breaks \
                     the wake/migration/exchange epoch discipline."
                ),
            });
        }
    }
}

/// Runs every per-file rule over one lexed file.
pub fn lint_file(lexed: &LexedFile, ctx: &FileContext, out: &mut Vec<Finding>) {
    dl001_hash_collections(lexed, ctx, out);
    dl002_ambient_nondeterminism(lexed, ctx, out);
    dl003_float_ordering(lexed, ctx, out);
    dl006_unwrap_in_sim(lexed, ctx, out);
    dl007_unordered_float_reduction(lexed, ctx, out);
    dl008_ordering_impls(lexed, ctx, out);
    dl009_unsafe_inventory(lexed, ctx, out);
    dl010_cross_shard_state(lexed, ctx, out);
}
