//! The determinism rules.
//!
//! Each rule protects a property an earlier PR established by hand and
//! the test suite can only probe, not prove:
//!
//! * [`RuleId::HashCollections`] (DL001) — simulation state iterates in
//!   a seed-independent order only because every container is ordered
//!   (`BTreeMap` / `SortedIdSet`). One `HashMap` iteration reorders
//!   placement scans and silently forks fixed-seed runs.
//! * [`RuleId::AmbientNondeterminism`] (DL002) — every random draw
//!   comes from a seeded RNG and every timestamp from the simulation
//!   clock. `thread_rng`, `Instant::now`, `SystemTime::now` and
//!   environment reads smuggle host state into the run.
//! * [`RuleId::FloatOrdering`] (DL003) — simulation times are ordered
//!   with `total_cmp` so a NaN produced by an upstream bug panics (or
//!   orders totally) instead of corrupting a heap or sort.
//! * [`RuleId::UncheckedCounter`] (DL004) — every counter in
//!   `dcsim::stats` is either covered by a conservation-law assertion
//!   or carries a visible waiver explaining why no law exists.
//! * [`RuleId::UnmatchedEvent`] (DL005) — every `Event` variant is
//!   dispatched in the engine; an undelivered event is a silent no-op
//!   that desynchronizes replicas of the same seed.
//! * [`RuleId::UnwrapInSim`] (DL006) — invariant lookups in `dcsim`
//!   use `expect` with a message naming the violated invariant, so a
//!   determinism bug crashes with a diagnosis instead of
//!   "called `unwrap()` on a `None` value".

use crate::lexer::{LexedFile, TokKind};
use crate::{CrateKind, Finding, RuleId};

/// Methods whose mere presence injects ambient state (matched as a
/// bare identifier anywhere outside entry crates and test code).
const AMBIENT_IDENTS: &[&str] = &["thread_rng", "from_entropy"];

/// `Type::method` paths that read the host clock.
const AMBIENT_CLOCKS: &[(&str, &str)] = &[("SystemTime", "now"), ("Instant", "now")];

/// `env::<read>` accessors that smuggle configuration past the seed.
const ENV_READS: &[&str] = &["var", "var_os", "vars", "vars_os"];

/// Context the per-file rules need about the file being linted.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Path as reported in diagnostics (workspace-relative).
    pub rel_path: String,
    /// Which determinism regime the containing crate lives under.
    pub kind: CrateKind,
}

/// Half-open token-index ranges lying inside `#[cfg(test)]` modules or
/// `#[test]` functions.
pub fn test_regions(lexed: &LexedFile) -> Vec<(usize, usize)> {
    let toks = &lexed.tokens;
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // `#` `[` ... `]` — an outer attribute.
        if lexed.punct_at(i, "#") && lexed.punct_at(i + 1, "[") {
            let mut j = i + 2;
            let mut depth = 1u32;
            let mut saw_test = false;
            let mut saw_not = false;
            while j < toks.len() && depth > 0 {
                if lexed.punct_at(j, "[") {
                    depth += 1;
                } else if lexed.punct_at(j, "]") {
                    depth -= 1;
                } else if toks[j].kind == TokKind::Ident {
                    // `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, ..))]`
                    // mark test code; `#[cfg(not(test))]` is the
                    // opposite and must not.
                    saw_test |= toks[j].text == "test";
                    saw_not |= toks[j].text == "not";
                }
                j += 1;
            }
            let is_test_attr = saw_test && !saw_not;
            if is_test_attr {
                // Find the `{` opening the annotated item and match
                // braces to its end.
                let mut k = j;
                while k < toks.len() && !lexed.punct_at(k, "{") {
                    // A `;` first means an item with no body.
                    if lexed.punct_at(k, ";") {
                        break;
                    }
                    k += 1;
                }
                if lexed.punct_at(k, "{") {
                    let mut bd = 1u32;
                    let start = k;
                    k += 1;
                    while k < toks.len() && bd > 0 {
                        if lexed.punct_at(k, "{") {
                            bd += 1;
                        } else if lexed.punct_at(k, "}") {
                            bd -= 1;
                        }
                        k += 1;
                    }
                    regions.push((start, k));
                    i = k;
                    continue;
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
    regions
}

fn in_regions(regions: &[(usize, usize)], idx: usize) -> bool {
    regions.iter().any(|&(a, b)| idx >= a && idx < b)
}

/// DL001: `HashMap` / `HashSet` anywhere in a simulation crate.
pub fn dl001_hash_collections(lexed: &LexedFile, ctx: &FileContext, out: &mut Vec<Finding>) {
    if ctx.kind != CrateKind::SimCore {
        return;
    }
    for t in &lexed.tokens {
        if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            out.push(Finding {
                file: ctx.rel_path.clone(),
                line: t.line,
                rule: RuleId::HashCollections,
                message: format!(
                    "`{}` in a simulation crate: iteration order depends on the hasher \
                     seed, which forks fixed-seed runs. Use `BTreeMap`/`BTreeSet` or \
                     `dcsim::SortedIdSet`.",
                    t.text
                ),
            });
        }
    }
}

/// DL002: ambient nondeterminism (host RNG, host clock, environment
/// reads) outside entry crates; `#[cfg(test)]` / `#[test]` code is
/// exempt (tests may stage temp files etc.).
pub fn dl002_ambient_nondeterminism(lexed: &LexedFile, ctx: &FileContext, out: &mut Vec<Finding>) {
    if ctx.kind == CrateKind::Entry {
        return;
    }
    let tests = test_regions(lexed);
    for (i, t) in lexed.tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || in_regions(&tests, i) {
            continue;
        }
        let mut flag: Option<String> = None;
        if AMBIENT_IDENTS.contains(&t.text.as_str()) {
            flag = Some(format!(
                "`{}` seeds from the host: every random draw must come from the \
                 simulation's own seeded RNG.",
                t.text
            ));
        } else {
            for &(ty, m) in AMBIENT_CLOCKS {
                if t.text == ty && lexed.path_at(i, &[ty, m]) {
                    flag = Some(format!(
                        "`{ty}::{m}` reads the host clock: simulation code must only \
                         observe the simulated clock (`self.now`)."
                    ));
                }
            }
            if t.text == "env" {
                for &rd in ENV_READS {
                    if lexed.path_at(i, &["env", rd]) {
                        flag = Some(format!(
                            "`env::{rd}` reads host configuration: runs must be a pure \
                             function of explicit config + seed. Plumb the value through \
                             the CLI crate instead."
                        ));
                    }
                }
            }
        }
        if let Some(message) = flag {
            out.push(Finding {
                file: ctx.rel_path.clone(),
                line: t.line,
                rule: RuleId::AmbientNondeterminism,
                message,
            });
        }
    }
}

/// DL003: `partial_cmp` call sites (float ordering must be total).
/// Definitions (`fn partial_cmp`) are exempt — a `PartialOrd` impl
/// that delegates to `Ord`/`total_cmp` is precisely the sanctioned
/// pattern.
pub fn dl003_float_ordering(lexed: &LexedFile, ctx: &FileContext, out: &mut Vec<Finding>) {
    for (i, t) in lexed.tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "partial_cmp" {
            continue;
        }
        if i > 0 && lexed.ident_at(i - 1, "fn") {
            continue;
        }
        let _ = ctx;
        out.push(Finding {
            file: ctx.rel_path.clone(),
            line: t.line,
            rule: RuleId::FloatOrdering,
            message: "`partial_cmp` on simulation quantities: a NaN here returns `None` \
                      and silently corrupts an ordering. Use `f64::total_cmp` (PR 1 made \
                      the event queue total for exactly this reason)."
                .to_string(),
        });
    }
}

/// DL006: `.unwrap()` in non-test `dcsim` code — hot-path lookups must
/// `expect` a message naming the violated invariant.
pub fn dl006_unwrap_in_sim(lexed: &LexedFile, ctx: &FileContext, out: &mut Vec<Finding>) {
    if ctx.kind != CrateKind::SimCore {
        return;
    }
    let tests = test_regions(lexed);
    for (i, t) in lexed.tokens.iter().enumerate() {
        if t.kind == TokKind::Ident
            && t.text == "unwrap"
            && i > 0
            && lexed.punct_at(i - 1, ".")
            && lexed.punct_at(i + 1, "(")
            && !in_regions(&tests, i)
        {
            out.push(Finding {
                file: ctx.rel_path.clone(),
                line: t.line,
                rule: RuleId::UnwrapInSim,
                message: "`.unwrap()` in simulator code: use `.expect(\"<invariant>\")` so \
                          a determinism bug crashes with a diagnosis, not \
                          \"called `Option::unwrap()` on a `None` value\"."
                    .to_string(),
            });
        }
    }
}

/// The identifiers appearing inside non-test `assert!`-family macro
/// invocations of a file — DL004's definition of "covered by a
/// conservation-law assertion".
pub fn assert_idents(lexed: &LexedFile) -> Vec<String> {
    const ASSERT_MACROS: &[&str] = &[
        "assert",
        "assert_eq",
        "assert_ne",
        "debug_assert",
        "debug_assert_eq",
        "debug_assert_ne",
    ];
    let tests = test_regions(lexed);
    let mut out = Vec::new();
    let toks = &lexed.tokens;
    let mut i = 0;
    while i < toks.len() {
        let is_assert = toks[i].kind == TokKind::Ident
            && ASSERT_MACROS.contains(&toks[i].text.as_str())
            && lexed.punct_at(i + 1, "!")
            && lexed.punct_at(i + 2, "(")
            && !in_regions(&tests, i);
        if !is_assert {
            i += 1;
            continue;
        }
        let mut depth = 1u32;
        let mut j = i + 3;
        while j < toks.len() && depth > 0 {
            if lexed.punct_at(j, "(") {
                depth += 1;
            } else if lexed.punct_at(j, ")") {
                depth -= 1;
            } else if toks[j].kind == TokKind::Ident {
                out.push(toks[j].text.clone());
            }
            j += 1;
        }
        i = j;
    }
    out.sort();
    out.dedup();
    out
}

/// The `u64` counter fields of the first `struct SimStats` in a lexed
/// `stats.rs`, as `(name, line, waived)` — `waived` when the field's
/// line (or the line above) carries a `detlint: unchecked-counter`
/// comment.
pub fn counter_fields(lexed: &LexedFile) -> Vec<(String, u32, bool)> {
    let toks = &lexed.tokens;
    // Locate `struct SimStats {`.
    let mut start = None;
    for i in 0..toks.len() {
        if lexed.ident_at(i, "struct") && lexed.ident_at(i + 1, "SimStats") {
            let mut j = i + 2;
            while j < toks.len() && !lexed.punct_at(j, "{") {
                j += 1;
            }
            start = Some(j + 1);
            break;
        }
    }
    let Some(mut i) = start else {
        return Vec::new();
    };
    // (line, standalone): a trailing waiver covers only its own field;
    // a comment-only line also covers the field directly below.
    let waiver_lines: Vec<(u32, bool)> = lexed
        .comments
        .iter()
        .filter(|c| c.text.contains("detlint:") && c.text.contains("unchecked-counter"))
        .map(|c| (c.line, !lexed.tokens.iter().any(|t| t.line == c.line)))
        .collect();
    let mut fields = Vec::new();
    let mut depth = 1u32;
    while i < toks.len() && depth > 0 {
        if lexed.punct_at(i, "{") {
            depth += 1;
            i += 1;
            continue;
        }
        if lexed.punct_at(i, "}") {
            depth -= 1;
            i += 1;
            continue;
        }
        // A field at struct depth: `[pub] name : Type ,` — detect the
        // `name : u64` shape and skip to the comma at depth 1.
        if depth == 1 && toks[i].kind == TokKind::Ident && lexed.punct_at(i + 1, ":") {
            let name = toks[i].text.clone();
            let line = toks[i].line;
            if name != "pub" && lexed.ident_at(i + 2, "u64") {
                // A waiver counts on the field's own line (trailing
                // comment) or on a comment-only line directly above.
                let waived = waiver_lines
                    .iter()
                    .any(|&(wl, standalone)| wl == line || (standalone && wl + 1 == line));
                fields.push((name, line, waived));
            }
        }
        i += 1;
    }
    fields
}

/// DL004: each `u64` counter in `SimStats` must appear in an assertion
/// somewhere in the simulator or carry an `unchecked-counter` waiver.
pub fn dl004_unchecked_counters(
    stats: &LexedFile,
    stats_rel_path: &str,
    asserted: &[String],
    out: &mut Vec<Finding>,
) {
    for (name, line, waived) in counter_fields(stats) {
        if waived || asserted.iter().any(|a| a == &name) {
            continue;
        }
        out.push(Finding {
            file: stats_rel_path.to_string(),
            line,
            rule: RuleId::UncheckedCounter,
            message: format!(
                "counter `{name}` is not referenced by any conservation-law assertion; \
                 add it to one in `engine.rs` or waive it with \
                 `// detlint: unchecked-counter — <why no law exists>`."
            ),
        });
    }
}

/// The variant names of `pub enum Event` in a lexed `events.rs`, with
/// their lines.
pub fn event_variants(lexed: &LexedFile) -> Vec<(String, u32)> {
    let toks = &lexed.tokens;
    let mut start = None;
    for i in 0..toks.len() {
        if lexed.ident_at(i, "enum") && lexed.ident_at(i + 1, "Event") {
            let mut j = i + 2;
            while j < toks.len() && !lexed.punct_at(j, "{") {
                j += 1;
            }
            start = Some(j + 1);
            break;
        }
    }
    let Some(mut i) = start else {
        return Vec::new();
    };
    let mut variants = Vec::new();
    let mut depth = 1u32;
    let mut expect_variant = true;
    while i < toks.len() && depth > 0 {
        if lexed.punct_at(i, "{") || lexed.punct_at(i, "(") {
            depth += 1;
        } else if lexed.punct_at(i, "}") || lexed.punct_at(i, ")") {
            depth -= 1;
        } else if depth == 1 {
            if expect_variant && toks[i].kind == TokKind::Ident {
                variants.push((toks[i].text.clone(), toks[i].line));
                expect_variant = false;
            } else if lexed.punct_at(i, ",") {
                expect_variant = true;
            }
        }
        i += 1;
    }
    variants
}

/// DL005: each `Event` variant must be matched (as `Event::Variant`)
/// in the engine's dispatch.
pub fn dl005_unmatched_events(
    events: &LexedFile,
    events_rel_path: &str,
    engine: &LexedFile,
    out: &mut Vec<Finding>,
) {
    let mut dispatched: Vec<&str> = Vec::new();
    for (i, t) in engine.tokens.iter().enumerate() {
        if t.kind == TokKind::Ident
            && t.text == "Event"
            && engine.punct_at(i + 1, ":")
            && engine.punct_at(i + 2, ":")
        {
            if let Some(v) = engine.tokens.get(i + 3) {
                if v.kind == TokKind::Ident {
                    dispatched.push(&v.text);
                }
            }
        }
    }
    for (variant, line) in event_variants(events) {
        if !dispatched.iter().any(|d| *d == variant) {
            out.push(Finding {
                file: events_rel_path.to_string(),
                line,
                rule: RuleId::UnmatchedEvent,
                message: format!(
                    "event variant `{variant}` is never dispatched as `Event::{variant}` \
                     in `engine.rs`; an unhandled event is a silent no-op that breaks \
                     the wake/migration/exchange epoch discipline."
                ),
            });
        }
    }
}

/// Runs every per-file rule over one lexed file.
pub fn lint_file(lexed: &LexedFile, ctx: &FileContext, out: &mut Vec<Finding>) {
    dl001_hash_collections(lexed, ctx, out);
    dl002_ambient_nondeterminism(lexed, ctx, out);
    dl003_float_ordering(lexed, ctx, out);
    dl006_unwrap_in_sim(lexed, ctx, out);
}
