//! A conservative whole-workspace call graph over the lexed token
//! streams.
//!
//! Edges over-approximate: a call site binds to *every* workspace
//! function its written path could plausibly name (per-crate flat
//! name tables, `use`-alias expansion, `pub use` re-export chasing,
//! and a same-crate fallback for unresolvable module paths). That is
//! the right direction for the taint pass — a missed edge could hide
//! entropy behind a wrapper, while a spurious edge to an *untainted*
//! function costs nothing. Known gaps, accepted deliberately: calls
//! through function values/closures (`map(f)` passes `f` without
//! parentheses) and trait-object dispatch create no edges; the
//! token-level rules (DL001/DL002) still cover sources written
//! directly inside simulation crates.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{LexedFile, TokKind};
use crate::rules::test_regions;
use crate::symbols::{crate_of, parse_file, FileSymbols, FnDef};
use crate::CrateKind;

/// One analyzed source file.
#[derive(Debug)]
pub struct AnalyzedFile {
    /// Workspace-relative path.
    pub rel_path: String,
    /// Determinism regime of the containing crate.
    pub kind: CrateKind,
    /// Token stream.
    pub lexed: LexedFile,
    /// Item structure.
    pub symbols: FileSymbols,
    /// Cached `#[cfg(test)]` token regions.
    pub tests: Vec<(usize, usize)>,
}

/// One call site, with every workspace function and external path the
/// written callee could resolve to.
#[derive(Debug)]
pub struct Call {
    /// Index of the enclosing function in [`Graph::fns`].
    pub caller: usize,
    /// File containing the call site.
    pub file: usize,
    /// 1-based line of the callee token.
    pub line: u32,
    /// Callee path segments exactly as written (one segment for bare
    /// and method calls).
    pub written: Vec<String>,
    /// `.name(...)` receiver call rather than a path call.
    pub is_method: bool,
    /// Candidate workspace callees (indices into [`Graph::fns`]).
    pub targets: Vec<usize>,
    /// Candidate fully-expanded external paths (aliases resolved).
    pub externals: Vec<Vec<String>>,
    /// The call site lies in `#[cfg(test)]` / `#[test]` code.
    pub in_test: bool,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct Graph {
    /// Every analyzed file, in input order (indices match
    /// [`FnDef::file`] / [`Call::file`]).
    pub files: Vec<AnalyzedFile>,
    /// Every function definition in the workspace.
    pub fns: Vec<FnDef>,
    /// Every resolved call site.
    pub calls: Vec<Call>,
    /// All workspace crate names (normalized idents).
    pub crates: BTreeSet<String>,
    by_crate_name: BTreeMap<(String, String), Vec<usize>>,
    reexports: BTreeMap<(String, String), Vec<(usize, Vec<String>)>>,
    glob_reexports: BTreeMap<String, Vec<(usize, Vec<String>)>>,
}

/// Callee idents that are control-flow keywords or otherwise never
/// function calls.
const NON_CALLEES: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "as",
    "where", "let", "mut", "ref", "move", "unsafe", "fn", "use", "pub", "impl", "trait", "struct",
    "enum", "mod", "const", "static", "type", "dyn",
];

impl Graph {
    /// Parses every file's symbols and builds the call graph.
    pub fn build(files: Vec<(String, CrateKind, LexedFile)>) -> Self {
        let mut graph = Graph::default();
        let analyzed: Vec<AnalyzedFile> = files
            .into_iter()
            .enumerate()
            .map(|(idx, (rel_path, kind, lexed))| {
                let symbols = parse_file(&lexed, &rel_path, idx);
                let tests = test_regions(&lexed);
                AnalyzedFile {
                    rel_path,
                    kind,
                    lexed,
                    symbols,
                    tests,
                }
            })
            .collect();

        for (file_idx, file) in analyzed.iter().enumerate() {
            let krate = crate_of(&file.rel_path);
            graph.crates.insert(krate.clone());
            for f in &file.symbols.fns {
                graph
                    .by_crate_name
                    .entry((krate.clone(), f.name.clone()))
                    .or_default()
                    .push(graph.fns.len());
                graph.fns.push(f.clone());
            }
            for u in &file.symbols.uses {
                if !u.is_pub {
                    continue;
                }
                if u.alias == "*" {
                    graph
                        .glob_reexports
                        .entry(krate.clone())
                        .or_default()
                        .push((file_idx, u.path.clone()));
                } else {
                    graph
                        .reexports
                        .entry((krate.clone(), u.alias.clone()))
                        .or_default()
                        .push((file_idx, u.path.clone()));
                }
            }
        }

        graph.extract_calls(&analyzed);
        graph.files = analyzed;
        graph
    }

    /// All functions named `name` in `krate` (flat, module-free).
    pub fn fns_named(&self, krate: &str, name: &str) -> &[usize] {
        self.by_crate_name
            .get(&(krate.to_string(), name.to_string()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    fn extract_calls(&mut self, files: &[AnalyzedFile]) {
        // Caller lookup: fn index by (file, body range).
        for (file_idx, file) in files.iter().enumerate() {
            let use_map = UseMap::of(file);
            let ctx_crate = crate_of(&file.rel_path);
            let fns_here: Vec<usize> = (0..self.fns.len())
                .filter(|&i| self.fns[i].file == file_idx)
                .collect();
            for &fn_idx in &fns_here {
                let (b0, b1) = self.fns[fn_idx].body;
                if b1 <= b0 {
                    continue;
                }
                // Innermost-fn attribution: skip token ranges owned by
                // nested fns (closures stay with the outer fn).
                let nested: Vec<(usize, usize)> = fns_here
                    .iter()
                    .filter(|&&o| o != fn_idx)
                    .map(|&o| self.fns[o].body)
                    .filter(|&(n0, n1)| n0 > b0 && n1 <= b1)
                    .collect();
                let mut i = b0;
                while i < b1 {
                    if nested.iter().any(|&(n0, n1)| i >= n0 && i < n1) {
                        i += 1;
                        continue;
                    }
                    if let Some(call) = self.call_at(file, file_idx, fn_idx, i, &use_map, &ctx_crate)
                    {
                        let next = i + 1;
                        self.calls.push(call);
                        i = next;
                        continue;
                    }
                    i += 1;
                }
            }
        }
    }

    /// Recognizes a call whose *callee token* is at `i` and resolves it.
    fn call_at(
        &self,
        file: &AnalyzedFile,
        file_idx: usize,
        caller: usize,
        i: usize,
        use_map: &UseMap,
        ctx_crate: &str,
    ) -> Option<Call> {
        let lexed = &file.lexed;
        let t = lexed.tokens.get(i)?;
        if t.kind != TokKind::Ident || NON_CALLEES.contains(&t.text.as_str()) {
            return None;
        }
        // The token after the callee: `(`, or a turbofish then `(`.
        let mut after = i + 1;
        if lexed.punct_at(after, ":") && lexed.punct_at(after + 1, ":") && lexed.punct_at(after + 2, "<")
        {
            after = skip_angle(lexed, after + 2);
        }
        if lexed.punct_at(i + 1, "!") {
            return None; // macro invocation
        }
        if !lexed.punct_at(after, "(") {
            return None;
        }
        // Must be the *last* segment of its path: `a::b(` triggers only
        // at `b` (at `a` the next token is `:`, not `(`).
        // Collect preceding `seg ::` pairs.
        let mut segs = vec![t.text.clone()];
        let mut j = i;
        while j >= 3 && lexed.punct_at(j - 1, ":") && lexed.punct_at(j - 2, ":") {
            let Some(prev) = lexed.tokens.get(j - 3) else {
                break;
            };
            if prev.kind != TokKind::Ident {
                break;
            }
            segs.insert(0, prev.text.clone());
            j -= 3;
        }
        let is_method = j >= 1 && lexed.punct_at(j - 1, ".") && segs.len() == 1;
        if segs.len() == 1 && !is_method {
            // A definition (`fn name(`) is not a call.
            if j >= 1 && lexed.ident_at(j - 1, "fn") {
                return None;
            }
        }
        let mut targets = Vec::new();
        let mut externals = Vec::new();
        if is_method {
            // Methods bind by name in the caller's crate and in every
            // workspace crate the file imports from.
            self.method_candidates(&t.text, ctx_crate, use_map, &mut targets);
        } else {
            self.resolve(&segs, ctx_crate, use_map, 0, &mut targets, &mut externals);
        }
        if targets.is_empty() && externals.is_empty() {
            return None;
        }
        targets.sort_unstable();
        targets.dedup();
        externals.sort();
        externals.dedup();
        Some(Call {
            caller,
            file: file_idx,
            line: t.line,
            written: segs,
            is_method,
            targets,
            externals,
            in_test: file.tests.iter().any(|&(a, b)| i >= a && i < b),
        })
    }

    fn method_candidates(
        &self,
        name: &str,
        ctx_crate: &str,
        use_map: &UseMap,
        out: &mut Vec<usize>,
    ) {
        let mut crates: BTreeSet<&str> = BTreeSet::new();
        crates.insert(ctx_crate);
        for head in &use_map.imported_crates {
            if self.crates.contains(head) {
                crates.insert(head);
            }
        }
        for k in crates {
            for &f in self.fns_named(k, name) {
                if self.fns[f].is_method {
                    out.push(f);
                }
            }
        }
    }

    /// Resolves a written path to workspace functions and/or external
    /// paths. Conservative: ambiguous heads resolve both ways.
    fn resolve(
        &self,
        segs: &[String],
        ctx_crate: &str,
        use_map: &UseMap,
        depth: u8,
        targets: &mut Vec<usize>,
        externals: &mut Vec<Vec<String>>,
    ) {
        if depth > 8 || segs.is_empty() {
            return;
        }
        let head = segs[0].as_str();
        let last = segs.last().expect("non-empty path").as_str();
        if segs.len() == 1 {
            if let Some(path) = use_map.aliases.get(head) {
                self.resolve(path, ctx_crate, use_map, depth + 1, targets, externals);
            }
            self.resolve_in_crate(ctx_crate, head, &mut BTreeSet::new(), targets, externals);
            for g in &use_map.globs {
                let mut p = g[..g.len() - 1].to_vec();
                p.push(head.to_string());
                self.resolve(&p, ctx_crate, use_map, depth + 1, targets, externals);
            }
            return;
        }
        match head {
            "crate" | "self" | "super" | "Self" => {
                self.resolve_in_crate(ctx_crate, last, &mut BTreeSet::new(), targets, externals);
            }
            _ if use_map.aliases.contains_key(head) => {
                let mut p = use_map.aliases[head].clone();
                p.extend_from_slice(&segs[1..]);
                self.resolve(&p, ctx_crate, use_map, depth + 1, targets, externals);
            }
            _ if self.crates.contains(head) => {
                self.resolve_in_crate(head, last, &mut BTreeSet::new(), targets, externals);
            }
            _ => {
                // `std::...`, an external crate, or a module path of
                // the current crate — resolve both ways.
                externals.push(segs.to_vec());
                self.resolve_in_crate(ctx_crate, last, &mut BTreeSet::new(), targets, externals);
            }
        }
    }

    /// Looks a name up in one crate's flat function table, then chases
    /// its `pub use` re-exports (cycle-guarded).
    fn resolve_in_crate(
        &self,
        krate: &str,
        name: &str,
        visited: &mut BTreeSet<(String, String)>,
        targets: &mut Vec<usize>,
        externals: &mut Vec<Vec<String>>,
    ) {
        if !visited.insert((krate.to_string(), name.to_string())) {
            return;
        }
        targets.extend_from_slice(self.fns_named(krate, name));
        if let Some(rexps) = self
            .reexports
            .get(&(krate.to_string(), name.to_string()))
        {
            for (_file, path) in rexps {
                self.resolve_reexport_target(krate, path, visited, targets, externals);
            }
        }
        if let Some(globs) = self.glob_reexports.get(krate) {
            for (_file, g) in globs {
                let mut p = g[..g.len() - 1].to_vec();
                p.push(name.to_string());
                self.resolve_reexport_target(krate, &p, visited, targets, externals);
            }
        }
    }

    /// Resolves a re-export target path in its declaring crate's
    /// context (no per-file aliases: `pub use` targets are written as
    /// full paths in this workspace's style).
    fn resolve_reexport_target(
        &self,
        krate: &str,
        path: &[String],
        visited: &mut BTreeSet<(String, String)>,
        targets: &mut Vec<usize>,
        externals: &mut Vec<Vec<String>>,
    ) {
        let Some(last) = path.last() else { return };
        let head = path[0].as_str();
        match head {
            "crate" | "self" | "super" => {
                self.resolve_in_crate(krate, last, visited, targets, externals);
            }
            _ if self.crates.contains(head) => {
                self.resolve_in_crate(head, last, visited, targets, externals);
            }
            _ if path.len() == 1 => {
                self.resolve_in_crate(krate, last, visited, targets, externals);
            }
            _ => {
                externals.push(path.to_vec());
                self.resolve_in_crate(krate, last, visited, targets, externals);
            }
        }
    }
}

/// Per-file import context.
struct UseMap {
    /// Non-glob bindings: local name → full path.
    aliases: BTreeMap<String, Vec<String>>,
    /// Glob import paths (ending in `*`).
    globs: Vec<Vec<String>>,
    /// Head crates named by any import (for method binding).
    imported_crates: BTreeSet<String>,
}

impl UseMap {
    fn of(file: &AnalyzedFile) -> Self {
        let mut aliases = BTreeMap::new();
        let mut globs = Vec::new();
        let mut imported_crates = BTreeSet::new();
        for u in &file.symbols.uses {
            if let Some(head) = u.path.first() {
                imported_crates.insert(head.replace('-', "_"));
            }
            if u.alias == "*" {
                globs.push(u.path.clone());
            } else {
                aliases.insert(u.alias.clone(), u.path.clone());
            }
        }
        UseMap {
            aliases,
            globs,
            imported_crates,
        }
    }
}

/// Skips past a `<...>` group starting at `<`, tolerant of `->`.
fn skip_angle(lexed: &LexedFile, mut i: usize) -> usize {
    let mut depth = 0i32;
    let n = lexed.tokens.len();
    while i < n {
        if lexed.punct_at(i, "-") && lexed.punct_at(i + 1, ">") {
            i += 2;
            continue;
        }
        if lexed.punct_at(i, "<") {
            depth += 1;
        } else if lexed.punct_at(i, ">") {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn build(files: &[(&str, CrateKind, &str)]) -> Graph {
        Graph::build(
            files
                .iter()
                .map(|(p, k, s)| (p.to_string(), *k, lex(s)))
                .collect(),
        )
    }

    fn callee_names(g: &Graph, caller: &str) -> Vec<String> {
        let caller_idx = g.fns.iter().position(|f| f.name == caller).expect("caller");
        let mut out: Vec<String> = g
            .calls
            .iter()
            .filter(|c| c.caller == caller_idx)
            .flat_map(|c| c.targets.iter().map(|&t| g.fns[t].name.clone()))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    #[test]
    fn cross_crate_path_call_resolves() {
        let g = build(&[
            (
                "crates/helper/src/lib.rs",
                CrateKind::Entry,
                "pub fn jitter() -> u64 { 4 }",
            ),
            (
                "crates/dcsim/src/engine.rs",
                CrateKind::SimCore,
                "fn place() { let _ = helper::jitter(); }",
            ),
        ]);
        assert_eq!(callee_names(&g, "place"), ["jitter"]);
    }

    #[test]
    fn use_alias_and_reexport_resolve() {
        let g = build(&[
            (
                "crates/helper/src/lib.rs",
                CrateKind::Entry,
                "mod inner { pub fn jitter() -> u64 { 4 } }\npub use inner::jitter as fast;",
            ),
            (
                "crates/dcsim/src/engine.rs",
                CrateKind::SimCore,
                "use helper::fast;\nfn place() { let _ = fast(); }",
            ),
        ]);
        assert_eq!(callee_names(&g, "place"), ["jitter"]);
    }

    #[test]
    fn method_calls_bind_within_crate_and_imports() {
        let g = build(&[(
            "crates/dcsim/src/engine.rs",
            CrateKind::SimCore,
            "struct S;\nimpl S { fn helper(&self) {} }\nfn run(s: &S) { s.helper(); }",
        )]);
        assert_eq!(callee_names(&g, "run"), ["helper"]);
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let g = build(&[(
            "crates/dcsim/src/engine.rs",
            CrateKind::SimCore,
            "fn run() { println!(\"x\"); if (true) {} return (); }",
        )]);
        let run = g.fns.iter().position(|f| f.name == "run").unwrap();
        assert!(g.calls.iter().all(|c| c.caller != run || !c.written.is_empty()));
        assert!(callee_names(&g, "run").is_empty());
    }

    #[test]
    fn external_paths_survive_alias_expansion() {
        let g = build(&[(
            "crates/dcsim/src/engine.rs",
            CrateKind::SimCore,
            "use rand::random as roll;\nfn run() -> u8 { roll() }",
        )]);
        let call = g.calls.iter().find(|c| c.written == ["roll"]).expect("call");
        assert!(call.externals.iter().any(|p| p == &["rand", "random"]));
    }
}
