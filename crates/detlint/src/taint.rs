//! The cross-crate determinism taint pass.
//!
//! DL001/DL002 match *spellings* — `thread_rng` written inside a sim
//! crate. A one-line wrapper defeats that: `fn jitter() -> u64 {
//! thread_rng().gen() }` in a helper crate is invisible to the token
//! rules, and the sim-side call `jitter()` is just an identifier.
//! This pass closes the hole on the [`crate::callgraph::Graph`]: functions
//! that *touch* an ambient source are seeded, taint propagates
//! backwards over call edges, and any call site in a non-entry crate
//! whose callee set intersects the tainted set is diagnosed *at the
//! call site* — the line a sim author can actually fix.
//!
//! Two taints propagate independently:
//!
//! * [`TaintKind::Entropy`] — host RNG, host clock, environment
//!   reads, `RandomState`. Diagnosed as DL002 at `SimCore` and
//!   `Library` call sites (the DL002 regime).
//! * [`TaintKind::HashOrder`] — iteration over std
//!   `HashMap`/`HashSet`. Diagnosed as DL001 at `SimCore` call sites
//!   (the DL001 regime).
//!
//! Call sites whose written tokens already trigger the token-level
//! rule are skipped here, so a direct `thread_rng()` in sim code
//! yields exactly one finding, not two.

use std::collections::BTreeMap;

use crate::callgraph::{Call, Graph};
use crate::lexer::{LexedFile, TokKind};
use crate::{CrateKind, Finding, RuleId};

/// Which determinism property a taint violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaintKind {
    /// Ambient entropy: host RNG / clock / env / hasher seeds.
    Entropy,
    /// Seed-dependent iteration order of std hash collections.
    HashOrder,
}

/// Why a function is tainted: a human-readable witness chain ending at
/// the ambient source.
#[derive(Debug, Clone)]
pub struct Taint {
    /// The violated property.
    pub kind: TaintKind,
    /// `` `wrapper` (path:line) → `thread_rng` (path:line) `` —
    /// shortest-first BFS chain, capped at four links.
    pub chain: String,
    /// BFS depth (0 = the function touches the source directly).
    pub depth: u32,
}

/// Idents that seed `Entropy` wherever they appear in a function body.
const ENTROPY_IDENTS: &[&str] = &["thread_rng", "from_entropy", "OsRng", "RandomState"];

/// `Type::method` paths that read the host clock.
const CLOCK_PATHS: &[(&str, &str)] = &[("SystemTime", "now"), ("Instant", "now")];

/// `env::<read>` accessors.
const ENV_READS: &[&str] = &["var", "var_os", "vars", "vars_os"];

/// Hash-collection type names (HashOrder carriers).
const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Methods whose call on a hash collection observes iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

/// Fully-resolved external call paths that seed `Entropy` (matched
/// against [`Call::externals`], i.e. after `use`-alias expansion).
fn external_entropy(path: &[String]) -> Option<&'static str> {
    let last = path.last().map(String::as_str)?;
    if ENTROPY_IDENTS.contains(&last) {
        return Some("host RNG");
    }
    if last == "random" && path.first().is_some_and(|h| h == "rand") {
        return Some("host RNG");
    }
    if path.len() >= 2 {
        let pair = (path[path.len() - 2].as_str(), last);
        if CLOCK_PATHS.contains(&pair) {
            return Some("host clock");
        }
        if pair.0 == "env" && ENV_READS.contains(&last) {
            return Some("host environment");
        }
    }
    if path.first().is_some_and(|h| h == "getrandom") {
        return Some("OS entropy");
    }
    None
}

/// Whether the written call tokens already trigger token-level
/// DL001/DL002 at this line (the taint finding would be a duplicate).
fn token_rules_already_fire(call: &Call, kind: TaintKind) -> bool {
    let Some(last) = call.written.last().map(String::as_str) else {
        return false;
    };
    match kind {
        TaintKind::Entropy => {
            if ["thread_rng", "from_entropy"].contains(&last) {
                return true;
            }
            if call.written.len() >= 2 {
                let pair = (call.written[call.written.len() - 2].as_str(), last);
                CLOCK_PATHS.contains(&pair) || (pair.0 == "env" && ENV_READS.contains(&last))
            } else {
                false
            }
        }
        // DL001 matches the `HashMap` type token, not calls; a call
        // site never duplicates it.
        TaintKind::HashOrder => false,
    }
}

/// Scans one function body for direct ambient sources. Returns the
/// seed description and line of the first hit per kind.
fn body_seeds(lexed: &LexedFile, body: (usize, usize)) -> Vec<(TaintKind, String, u32)> {
    let (b0, b1) = body;
    let toks = &lexed.tokens;
    let mut entropy: Option<(String, u32)> = None;
    let mut hash_ty: Option<u32> = None;
    let mut hash_iter: Option<u32> = None;
    for i in b0..b1.min(toks.len()) {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let s = t.text.as_str();
        if entropy.is_none() {
            if ENTROPY_IDENTS.contains(&s) {
                entropy = Some((format!("`{s}`"), t.line));
            } else if let Some(&(ty, m)) = CLOCK_PATHS.iter().find(|&&(ty, _)| ty == s) {
                if lexed.path_at(i, &[ty, m]) {
                    entropy = Some((format!("`{ty}::{m}`"), t.line));
                }
            } else if s == "env" {
                for &rd in ENV_READS {
                    if lexed.path_at(i, &["env", rd]) {
                        entropy = Some((format!("`env::{rd}`"), t.line));
                    }
                }
            }
        }
        if HASH_TYPES.contains(&s) && hash_ty.is_none() {
            hash_ty = Some(t.line);
        }
        if ITER_METHODS.contains(&s) && i > b0 && lexed.punct_at(i - 1, ".") && hash_iter.is_none()
        {
            hash_iter = Some(t.line);
        }
    }
    let mut out = Vec::new();
    if let Some((what, line)) = entropy {
        out.push((TaintKind::Entropy, what, line));
    }
    if let (Some(line), Some(_)) = (hash_ty, hash_iter) {
        out.push((
            TaintKind::HashOrder,
            "std hash-collection iteration".to_string(),
            line,
        ));
    }
    out
}

/// The result of the taint pass: per-function taints, keyed by
/// function index in the graph.
#[derive(Debug, Default)]
pub struct TaintMap {
    // Keyed on (fn index, stable kind discriminant) — `TaintKind`
    // itself deliberately stays a plain enum.
    map: BTreeMap<(usize, u8), Taint>,
}

fn kind_key(k: TaintKind) -> u8 {
    match k {
        TaintKind::Entropy => 0,
        TaintKind::HashOrder => 1,
    }
}

impl TaintMap {
    /// The taint of `fn_idx` for `kind`, if any.
    pub fn get(&self, fn_idx: usize, kind: TaintKind) -> Option<&Taint> {
        self.map.get(&(fn_idx, kind_key(kind)))
    }

    /// Number of tainted (function, kind) pairs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is tainted.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Seeds and propagates taint over the reverse call graph (BFS, so
/// chains are shortest witnesses; deterministic order throughout).
pub fn propagate(graph: &Graph) -> TaintMap {
    let mut map: BTreeMap<(usize, u8), Taint> = BTreeMap::new();
    // Seed from function bodies. Test functions are exempt: tests may
    // stage temp dirs, time themselves, etc.
    for (fi, f) in graph.fns.iter().enumerate() {
        if f.in_test {
            continue;
        }
        let lexed = &graph.files[f.file].lexed;
        for (kind, what, line) in body_seeds(lexed, f.body) {
            map.entry((fi, kind_key(kind))).or_insert(Taint {
                kind,
                chain: format!("{what} ({}:{line})", graph.files[f.file].rel_path),
                depth: 0,
            });
        }
    }
    // Seed from resolved external call paths (catches `use rand::random
    // as roll; roll()` where no ambient token appears in the body).
    for call in &graph.calls {
        if call.in_test {
            continue;
        }
        let caller = &graph.fns[call.caller];
        if caller.in_test {
            continue;
        }
        for ext in &call.externals {
            if let Some(what) = external_entropy(ext) {
                map.entry((call.caller, kind_key(TaintKind::Entropy)))
                    .or_insert(Taint {
                        kind: TaintKind::Entropy,
                        chain: format!(
                            "`{}` [{what}] ({}:{})",
                            ext.join("::"),
                            graph.files[call.file].rel_path,
                            call.line
                        ),
                        depth: 0,
                    });
            }
        }
    }
    // Reverse edges: callee -> (caller, call). Calls from test code do
    // not propagate (a test calling `thread_rng` taints nothing).
    let mut rev: BTreeMap<usize, Vec<(usize, usize)>> = BTreeMap::new();
    for (ci, call) in graph.calls.iter().enumerate() {
        if call.in_test || graph.fns[call.caller].in_test {
            continue;
        }
        for &t in &call.targets {
            rev.entry(t).or_default().push((call.caller, ci));
        }
    }
    // BFS frontier, kept sorted for determinism.
    let mut frontier: Vec<(usize, u8)> = map.keys().copied().collect();
    while !frontier.is_empty() {
        frontier.sort_unstable();
        let mut next = Vec::new();
        for (fi, kk) in frontier.drain(..) {
            let taint = map[&(fi, kk)].clone();
            if taint.depth >= 32 {
                continue;
            }
            let Some(callers) = rev.get(&fi) else {
                continue;
            };
            for &(caller, ci) in callers {
                if map.contains_key(&(caller, kk)) {
                    continue;
                }
                let call = &graph.calls[ci];
                let callee = &graph.fns[fi];
                let hop = format!(
                    "`{}` ({}:{})",
                    callee.name, graph.files[call.file].rel_path, call.line
                );
                let chain = if taint.depth >= 3 {
                    format!("{hop} → …")
                } else {
                    format!("{hop} → {}", taint.chain)
                };
                map.insert(
                    (caller, kk),
                    Taint {
                        kind: taint.kind,
                        chain,
                        depth: taint.depth + 1,
                    },
                );
                next.push((caller, kk));
            }
        }
        frontier = next;
    }
    TaintMap { map }
}

/// Emits call-site findings: calls in non-test, non-entry code whose
/// callee set intersects the tainted set.
pub fn findings(graph: &Graph, taints: &TaintMap) -> Vec<Finding> {
    let mut out = Vec::new();
    for call in &graph.calls {
        let file = &graph.files[call.file];
        if call.in_test || graph.fns[call.caller].in_test {
            continue;
        }
        for kind in [TaintKind::Entropy, TaintKind::HashOrder] {
            let diagnosable = match kind {
                TaintKind::Entropy => file.kind != CrateKind::Entry,
                TaintKind::HashOrder => file.kind == CrateKind::SimCore,
            };
            if !diagnosable || token_rules_already_fire(call, kind) {
                continue;
            }
            // First tainted target (graph order) is the witness.
            let Some((t, taint)) = call
                .targets
                .iter()
                .find_map(|&t| taints.get(t, kind).map(|w| (t, w)))
            else {
                continue;
            };
            let callee = &graph.fns[t];
            let (rule, what, fix) = match kind {
                TaintKind::Entropy => (
                    RuleId::AmbientNondeterminism,
                    "reaches ambient entropy",
                    "route the value through the seeded RNG / simulated clock plumbed \
                     from config",
                ),
                TaintKind::HashOrder => (
                    RuleId::HashCollections,
                    "observes std hash-collection iteration order",
                    "use `BTreeMap`/`BTreeSet` (or `dcsim::SortedIdSet`) behind this call",
                ),
            };
            out.push(Finding {
                file: file.rel_path.clone(),
                line: call.line,
                rule,
                message: format!(
                    "call to `{}` {what} through {}; fixed-seed runs must be a pure \
                     function of config + seed — {fix}.",
                    callee.name, taint.chain
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn graph(files: &[(&str, CrateKind, &str)]) -> Graph {
        Graph::build(
            files
                .iter()
                .map(|(p, k, s)| (p.to_string(), *k, lex(s)))
                .collect(),
        )
    }

    fn run(files: &[(&str, CrateKind, &str)]) -> Vec<Finding> {
        let g = graph(files);
        let taints = propagate(&g);
        findings(&g, &taints)
    }

    #[test]
    fn wrapper_in_helper_crate_is_flagged_at_sim_call_site() {
        let found = run(&[
            (
                "crates/helper/src/lib.rs",
                CrateKind::Entry,
                "pub fn jitter() -> u64 { thread_rng().gen() }",
            ),
            (
                "crates/dcsim/src/engine.rs",
                CrateKind::SimCore,
                "fn place() { let _ = helper::jitter(); }",
            ),
        ]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].file, "crates/dcsim/src/engine.rs");
        assert_eq!(found[0].rule, RuleId::AmbientNondeterminism);
        assert!(found[0].message.contains("jitter"), "{}", found[0].message);
        assert!(
            found[0].message.contains("thread_rng"),
            "chain names the source: {}",
            found[0].message
        );
    }

    #[test]
    fn reexported_wrapper_is_still_flagged() {
        let found = run(&[
            (
                "crates/helper/src/inner.rs",
                CrateKind::Entry,
                "pub fn jitter() -> u64 { thread_rng().gen() }",
            ),
            (
                "crates/helper/src/lib.rs",
                CrateKind::Entry,
                "mod inner;\npub use inner::jitter as fast_jitter;",
            ),
            (
                "crates/dcsim/src/engine.rs",
                CrateKind::SimCore,
                "use helper::fast_jitter;\nfn place() { let _ = fast_jitter(); }",
            ),
        ]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].file, "crates/dcsim/src/engine.rs");
        assert_eq!(found[0].line, 2);
    }

    #[test]
    fn transitive_chain_and_direct_site_do_not_duplicate() {
        // thread_rng written directly in sim code is DL002's job — the
        // taint pass must stay silent there.
        let found = run(&[(
            "crates/dcsim/src/engine.rs",
            CrateKind::SimCore,
            "fn place() { let _ = thread_rng(); }",
        )]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn hash_iteration_taints_simcore_call_sites_only() {
        let helper = (
            "crates/helper/src/lib.rs",
            CrateKind::Entry,
            "pub fn order() -> Vec<u64> { let m: HashMap<u64, u64> = HashMap::new();\n\
             m.keys().copied().collect() }",
        );
        let sim = (
            "crates/dcsim/src/engine.rs",
            CrateKind::SimCore,
            "fn place() { let _ = helper::order(); }",
        );
        let lib = (
            "crates/metrics/src/lib.rs",
            CrateKind::Library,
            "fn summarize() { let _ = helper::order(); }",
        );
        let found = run(&[helper, sim, lib]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, RuleId::HashCollections);
        assert_eq!(found[0].file, "crates/dcsim/src/engine.rs");
    }

    #[test]
    fn test_code_neither_seeds_nor_sites() {
        let found = run(&[
            (
                "crates/helper/src/lib.rs",
                CrateKind::Entry,
                "#[cfg(test)]\nmod tests { pub fn jitter() -> u64 { thread_rng().gen() } }",
            ),
            (
                "crates/dcsim/src/engine.rs",
                CrateKind::SimCore,
                "#[cfg(test)]\nmod tests {\n fn probe() { let _ = helper::jitter(); }\n}",
            ),
        ]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn aliased_external_rng_seeds_the_caller() {
        let found = run(&[
            (
                "crates/helper/src/lib.rs",
                CrateKind::Entry,
                "use rand::random as roll;\npub fn jitter() -> u64 { roll() }",
            ),
            (
                "crates/dcsim/src/engine.rs",
                CrateKind::SimCore,
                "fn place() { let _ = helper::jitter(); }",
            ),
        ]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("rand::random"), "{}", found[0].message);
    }
}
