//! Workspace discovery and the full lint run.
//!
//! File discovery is deliberately simple and deterministic: the fixed
//! crate layout of this repository (root package + `crates/*`), walked
//! in sorted order. `detlint`'s own fixture files are excluded — they
//! exist to be bad.

use crate::callgraph::Graph;
use crate::lexer::{self, LexedFile};
use crate::rules::{self, FileContext};
use crate::{apply_waivers, taint, CrateKind, Finding};
use std::fs;
use std::path::{Path, PathBuf};

/// The result of a whole-workspace run: diagnostics plus non-fatal
/// warnings (files skipped rather than linted).
#[derive(Debug, Default)]
pub struct LintReport {
    /// Sorted, deduplicated findings.
    pub findings: Vec<Finding>,
    /// Human-readable skip warnings (e.g. non-UTF-8 sources).
    pub warnings: Vec<String>,
}

/// Classifies a workspace-relative path into the crate regimes of
/// [`CrateKind`]; `None` means the file is not linted at all
/// (fixtures).
pub fn classify(rel: &str) -> Option<CrateKind> {
    if rel.contains("tests/fixtures/") {
        return None;
    }
    let crate_name = rel
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("ecocloud");
    Some(match crate_name {
        "dcsim" | "ecocloud-core" => CrateKind::SimCore,
        "metrics" | "traces" | "baselines" | "analytic" => CrateKind::Library,
        // Entry points (CLI, figure binaries, benches, the linter):
        // these may read the host environment; determinism is restored
        // at the boundary by plumbing everything into explicit config.
        _ => CrateKind::Entry,
    })
}

/// Finds the workspace root by walking up from `start` until a
/// directory containing both `Cargo.toml` and `crates/` appears.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// All `.rs` files under the workspace that the pass lints, as sorted
/// workspace-relative paths.
pub fn discover(root: &Path) -> std::io::Result<Vec<String>> {
    let mut files = Vec::new();
    for top in ["src", "tests", "examples"] {
        walk(&root.join(top), root, &mut files)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<_> = fs::read_dir(&crates_dir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .collect();
        entries.sort();
        for krate in entries {
            for sub in ["src", "tests", "benches"] {
                walk(&krate.join(sub), root, &mut files)?;
            }
        }
    }
    files.sort();
    files.retain(|f| classify(f).is_some());
    Ok(files)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Lints one file's source under the given context, waivers applied.
/// Per-file rules only — the cross-crate taint pass needs the whole
/// file set; use [`lint_files`] for that.
pub fn lint_source(source: &str, ctx: &FileContext) -> Vec<Finding> {
    let lexed = lexer::lex(source);
    let mut findings = Vec::new();
    rules::lint_file(&lexed, ctx, &mut findings);
    apply_waivers(&lexed, &mut findings);
    findings
}

/// Sorts diagnostics into the stable report order: (file, line, rule).
pub fn sort_findings(findings: &mut Vec<Finding>) {
    findings.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then(a.rule.cmp(&b.rule))
    });
}

/// Runs the per-file rules and the cross-crate taint pass over an
/// in-memory file set. Waivers apply to taint findings exactly as to
/// token findings — by call-site line.
pub fn lint_files(files: &[(String, CrateKind, String)]) -> Vec<Finding> {
    lint_lexed(
        files
            .iter()
            .map(|(rel, kind, src)| (rel.clone(), *kind, lexer::lex(src)))
            .collect(),
    )
}

fn lint_lexed(files: Vec<(String, CrateKind, LexedFile)>) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (rel, kind, lexed) in &files {
        let ctx = FileContext {
            rel_path: rel.clone(),
            kind: *kind,
        };
        let mut file_findings = Vec::new();
        rules::lint_file(lexed, &ctx, &mut file_findings);
        apply_waivers(lexed, &mut file_findings);
        findings.append(&mut file_findings);
    }
    let graph = Graph::build(files);
    let taints = taint::propagate(&graph);
    let mut tainted = taint::findings(&graph, &taints);
    for file in &graph.files {
        let (mut mine, rest): (Vec<Finding>, Vec<Finding>) = tainted
            .into_iter()
            .partition(|f| f.file == file.rel_path);
        apply_waivers(&file.lexed, &mut mine);
        findings.append(&mut mine);
        tainted = rest;
    }
    findings.append(&mut tainted);
    sort_findings(&mut findings);
    // A taint witness and a token rule can land on the same (file,
    // line, rule); report each coordinate once.
    findings.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.rule == b.rule);
    findings
}

/// Runs the whole pass over the workspace rooted at `root`: per-file
/// rules and the cross-crate taint pass on every discovered file, then
/// the cross-file rules (counter coverage, event dispatch) on the
/// simulator. Non-UTF-8 sources are skipped with a warning — the lint
/// gate must never panic on an input file.
pub fn lint_workspace(root: &Path) -> std::io::Result<LintReport> {
    let mut report = LintReport::default();
    let mut stats: Option<LexedFile> = None;
    let mut events: Option<LexedFile> = None;
    let mut engine: Option<LexedFile> = None;
    let mut asserted: Vec<String> = Vec::new();
    let mut lexed_files: Vec<(String, CrateKind, LexedFile)> = Vec::new();

    for rel in discover(root)? {
        let Some(kind) = classify(&rel) else { continue };
        let bytes = fs::read(root.join(&rel))?;
        let source = match String::from_utf8(bytes) {
            Ok(s) => s,
            Err(e) => {
                report.warnings.push(format!(
                    "{rel}: skipped (not valid UTF-8: {})",
                    e.utf8_error()
                ));
                continue;
            }
        };
        let lexed = lexer::lex(&source);

        if rel.starts_with("crates/dcsim/src/") {
            let mut a = rules::assert_idents(&lexed);
            asserted.append(&mut a);
        }
        match rel.as_str() {
            "crates/dcsim/src/stats.rs" => stats = Some(lexed.clone()),
            "crates/dcsim/src/events.rs" => events = Some(lexed.clone()),
            "crates/dcsim/src/engine.rs" => engine = Some(lexed.clone()),
            _ => {}
        }
        lexed_files.push((rel, kind, lexed));
    }

    report.findings = lint_lexed(lexed_files);

    if let Some(stats) = &stats {
        rules::dl004_unchecked_counters(
            stats,
            "crates/dcsim/src/stats.rs",
            &asserted,
            &mut report.findings,
        );
    }
    if let (Some(events), Some(engine)) = (&events, &engine) {
        rules::dl005_unmatched_events(
            events,
            "crates/dcsim/src/events.rs",
            engine,
            &mut report.findings,
        );
    }

    sort_findings(&mut report.findings);
    Ok(report)
}
