# Regenerates the paper's Fig. 5: deviation of punctual from average utilization
# usage: gnuplot fig05_deviation_dist.gp  (from the out/ directory)
set datafile separator ','
set terminal pngcairo size 900,540 font 'sans,11'
set output 'fig05_deviation_dist.png'
set title 'Fig. 5: deviation of punctual from average utilization'
set xlabel 'deviation (percentage points)'
set ylabel 'frequency'
set key outside top right
set grid
plot 'fig05_deviation_dist.csv' using 1:2 skip 1 with boxes title 'frequency'
