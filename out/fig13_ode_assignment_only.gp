# Regenerates the paper's Fig. 13: CPU utilization, 100 servers, assignment-only (fluid model)
# usage: gnuplot fig13_ode_assignment_only.gp  (from the out/ directory)
set datafile separator ','
set terminal pngcairo size 900,540 font 'sans,11'
set output 'fig13_ode_assignment_only.png'
set title 'Fig. 13: CPU utilization, 100 servers, assignment-only (fluid model)'
set xlabel 'time (hours)'
set ylabel 'active servers / load / median u'
set key outside top right
set grid
plot 'fig13_ode_assignment_only.csv' using 1:3 skip 1 with lines title 'active servers', \
     'fig13_ode_assignment_only.csv' using 1:4 skip 1 with lines title 'overall load', \
     'fig13_ode_assignment_only.csv' using 1:5 skip 1 with lines title 'median powered u'
