# Regenerates the paper's Fig. 3: migration probability functions (Tl = 0.3, Th = 0.8)
# usage: gnuplot fig03_migration_functions.gp  (from the out/ directory)
set datafile separator ','
set terminal pngcairo size 900,540 font 'sans,11'
set output 'fig03_migration_functions.png'
set title 'Fig. 3: migration probability functions (Tl = 0.3, Th = 0.8)'
set xlabel 'CPU utilization'
set ylabel 'probability'
set key outside top right
set grid
plot 'fig03_migration_functions.csv' using 1:2 skip 1 with lines title 'f_l, alpha=1', \
     'fig03_migration_functions.csv' using 1:3 skip 1 with lines title 'f_l, alpha=0.25', \
     'fig03_migration_functions.csv' using 1:4 skip 1 with lines title 'f_h, beta=1', \
     'fig03_migration_functions.csv' using 1:5 skip 1 with lines title 'f_h, beta=0.25'
