# Regenerates the paper's Fig. 9: low and high migrations per hour
# usage: gnuplot fig09_migrations.gp  (from the out/ directory)
set datafile separator ','
set terminal pngcairo size 900,540 font 'sans,11'
set output 'fig09_migrations.png'
set title 'Fig. 9: low and high migrations per hour'
set xlabel 'hour'
set ylabel 'migrations per hour'
set key outside top right
set grid
plot 'fig09_migrations.csv' using 1:2 skip 1 with lines title 'low migrations', \
     'fig09_migrations.csv' using 1:3 skip 1 with lines title 'high migrations', \
     'fig09_migrations.csv' using 1:4 skip 1 with lines title 'low (ensemble mean)', \
     'fig09_migrations.csv' using 1:6 skip 1 with lines title 'high (ensemble mean)'
