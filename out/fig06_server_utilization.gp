# Regenerates the paper's Fig. 6: per-server CPU utilization (percentile bands) and overall load
# usage: gnuplot fig06_server_utilization.gp  (from the out/ directory)
set datafile separator ','
set terminal pngcairo size 900,540 font 'sans,11'
set output 'fig06_server_utilization.png'
set title 'Fig. 6: per-server CPU utilization (percentile bands) and overall load'
set xlabel 'time (hours)'
set ylabel 'CPU utilization'
set key outside top right
set grid
plot 'fig06_server_utilization.csv' using 1:2 skip 1 with lines title 'p10', \
     'fig06_server_utilization.csv' using 1:3 skip 1 with lines title 'median', \
     'fig06_server_utilization.csv' using 1:4 skip 1 with lines title 'p90', \
     'fig06_server_utilization.csv' using 1:6 skip 1 with points title 'overall load'
