# Regenerates the paper's Fig. 2: assignment probability function (Ta = 0.9)
# usage: gnuplot fig02_assignment_function.gp  (from the out/ directory)
set datafile separator ','
set terminal pngcairo size 900,540 font 'sans,11'
set output 'fig02_assignment_function.png'
set title 'Fig. 2: assignment probability function (Ta = 0.9)'
set xlabel 'CPU utilization'
set ylabel 'f_a(u)'
set key outside top right
set grid
plot 'fig02_assignment_function.csv' using 1:2 skip 1 with lines title 'p=2', \
     'fig02_assignment_function.csv' using 1:3 skip 1 with lines title 'p=3', \
     'fig02_assignment_function.csv' using 1:4 skip 1 with lines title 'p=5'
