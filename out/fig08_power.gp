# Regenerates the paper's Fig. 8: power consumed by the data center
# usage: gnuplot fig08_power.gp  (from the out/ directory)
set datafile separator ','
set terminal pngcairo size 900,540 font 'sans,11'
set output 'fig08_power.png'
set title 'Fig. 8: power consumed by the data center'
set xlabel 'time (hours)'
set ylabel 'power (W)'
set key outside top right
set grid
plot 'fig08_power.csv' using 1:2 skip 1 with lines title 'power (one seed)', \
     'fig08_power.csv' using 1:3 skip 1 with lines title 'ensemble mean'
