# Regenerates the paper's Fig. 4: distribution of the average VM CPU utilization
# usage: gnuplot fig04_vm_utilization_dist.gp  (from the out/ directory)
set datafile separator ','
set terminal pngcairo size 900,540 font 'sans,11'
set output 'fig04_vm_utilization_dist.png'
set title 'Fig. 4: distribution of the average VM CPU utilization'
set xlabel 'avg CPU utilization (%)'
set ylabel 'frequency'
set key outside top right
set grid
plot 'fig04_vm_utilization_dist.csv' using 1:2 skip 1 with boxes title 'frequency'
