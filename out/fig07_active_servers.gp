# Regenerates the paper's Fig. 7: number of active servers
# usage: gnuplot fig07_active_servers.gp  (from the out/ directory)
set datafile separator ','
set terminal pngcairo size 900,540 font 'sans,11'
set output 'fig07_active_servers.png'
set title 'Fig. 7: number of active servers'
set xlabel 'time (hours)'
set ylabel 'active servers'
set key outside top right
set grid
plot 'fig07_active_servers.csv' using 1:2 skip 1 with lines title 'active servers (one seed)', \
     'fig07_active_servers.csv' using 1:3 skip 1 with lines title 'ensemble mean'
