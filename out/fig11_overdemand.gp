# Regenerates the paper's Fig. 11: fraction of time of CPU over-demand
# usage: gnuplot fig11_overdemand.gp  (from the out/ directory)
set datafile separator ','
set terminal pngcairo size 900,540 font 'sans,11'
set output 'fig11_overdemand.png'
set title 'Fig. 11: fraction of time of CPU over-demand'
set xlabel 'time (hours)'
set ylabel '% of VM-time'
set key outside top right
set grid
plot 'fig11_overdemand.csv' using 1:2 skip 1 with lines title 'over-demand (one seed)', \
     'fig11_overdemand.csv' using 1:3 skip 1 with lines title 'ensemble mean'
