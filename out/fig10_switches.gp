# Regenerates the paper's Fig. 10: server switches per hour
# usage: gnuplot fig10_switches.gp  (from the out/ directory)
set datafile separator ','
set terminal pngcairo size 900,540 font 'sans,11'
set output 'fig10_switches.png'
set title 'Fig. 10: server switches per hour'
set xlabel 'hour'
set ylabel 'switches per hour'
set key outside top right
set grid
plot 'fig10_switches.csv' using 1:2 skip 1 with lines title 'activations', \
     'fig10_switches.csv' using 1:3 skip 1 with lines title 'hibernations', \
     'fig10_switches.csv' using 1:4 skip 1 with lines title 'activations (ensemble mean)', \
     'fig10_switches.csv' using 1:6 skip 1 with lines title 'hibernations (ensemble mean)'
