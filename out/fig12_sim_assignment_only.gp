# Regenerates the paper's Fig. 12: CPU utilization, 100 servers, assignment-only (simulation)
# usage: gnuplot fig12_sim_assignment_only.gp  (from the out/ directory)
set datafile separator ','
set terminal pngcairo size 900,540 font 'sans,11'
set output 'fig12_sim_assignment_only.png'
set title 'Fig. 12: CPU utilization, 100 servers, assignment-only (simulation)'
set xlabel 'time (hours)'
set ylabel 'CPU utilization / servers'
set key outside top right
set grid
plot 'fig12_sim_assignment_only.csv' using 1:3 skip 1 with lines title 'median powered util', \
     'fig12_sim_assignment_only.csv' using 1:4 skip 1 with lines title 'p90 powered util', \
     'fig12_sim_assignment_only.csv' using 1:6 skip 1 with points title 'overall load'
