//! Ready-made experiment scenarios matching the paper's two setups.

use dcsim::{Fleet, Policy, SimConfig, SimResult, Simulation, Workload};
use ecocloud_traces::arrivals::ArrivalProcess;
use ecocloud_traces::{TraceConfig, TraceSet};

/// A complete simulation setup: fleet + workload + kernel config.
///
/// Scenarios are cheap to clone-and-tweak; `run` consumes nothing and
/// can be called once per policy for apples-to-apples comparisons
/// (same traces, same arrivals, same seeds everywhere but inside the
/// policy).
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The physical servers.
    pub fleet: Fleet,
    /// The VMs and their demand traces.
    pub workload: Workload,
    /// Kernel configuration.
    pub config: SimConfig,
}

impl Scenario {
    /// The paper's §III scenario: 400 heterogeneous servers, 6,000
    /// trace-driven VMs, 48 hours starting at midnight, migrations on.
    pub fn paper_48h(seed: u64) -> Self {
        let traces = TraceSet::generate(TraceConfig::paper_48h(seed));
        Self {
            fleet: Fleet::paper_400(),
            workload: Workload::all_vms_from_start(traces),
            config: SimConfig::paper_48h(seed),
        }
    }

    /// The paper's §IV scenario (Fig. 12): 100 six-core servers,
    /// 1,500 VMs initially spread out (non-consolidated, ≈10–30 % per
    /// server at midnight load), churn with a 2-hour mean lifetime,
    /// 18 hours, migrations inhibited — consolidation happens through
    /// the assignment procedure alone.
    pub fn paper_fig12(seed: u64) -> Self {
        let traces = TraceSet::generate(TraceConfig::paper_48h(seed));
        let process = ArrivalProcess::paper_fig12();
        let config = SimConfig::paper_fig12(seed);
        let workload = Workload::churn(traces, 1500, &process, config.duration_secs, seed);
        Self {
            fleet: Fleet::uniform(100, 6),
            workload,
            config,
        }
    }

    /// A laptop-scale smoke scenario (40 servers, 600 VMs, 6 hours)
    /// for tests, docs and the quickstart example.
    pub fn small(seed: u64) -> Self {
        let traces = TraceSet::generate(TraceConfig {
            n_vms: 600,
            duration_secs: 6 * 3600,
            ..TraceConfig::small(seed)
        });
        let mut config = SimConfig::paper_48h(seed);
        config.duration_secs = 6.0 * 3600.0;
        Self {
            fleet: Fleet::thirds(40),
            workload: Workload::all_vms_from_start(traces),
            config,
        }
    }

    /// Runs the scenario under `policy`.
    pub fn run<P: Policy>(&self, policy: P) -> SimResult {
        Simulation::new(
            self.fleet.clone(),
            self.workload.clone(),
            self.config.clone(),
            policy,
        )
        .run()
    }

    /// Overall average load of the workload relative to the fleet
    /// (sanity statistic used by tests and reports).
    pub fn mean_overall_load(&self) -> f64 {
        let cap = self.fleet.total_capacity_mhz();
        let steps = self.workload.traces.config.steps();
        let step = self.workload.traces.config.step_secs;
        let sum: f64 = (0..steps)
            .map(|k| {
                self.workload
                    .traces
                    .total_demand_mhz_at((k as u64 * step) as f64)
                    / cap
            })
            .sum();
        sum / steps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecocloud_core::EcoCloudPolicy;

    #[test]
    fn small_scenario_consolidates() {
        let s = Scenario::small(3);
        let r = s.run(EcoCloudPolicy::paper(3));
        assert_eq!(r.policy_name, "ecocloud");
        assert!(
            r.summary.dropped_vms == 0,
            "dropped {}",
            r.summary.dropped_vms
        );
        assert!(
            r.final_powered < s.fleet.len(),
            "no consolidation: {} powered of {}",
            r.final_powered,
            s.fleet.len()
        );
        assert!(r.summary.energy_kwh > 0.0);
    }

    #[test]
    fn paper_scenarios_have_paper_dimensions() {
        let s = Scenario::paper_48h(1);
        assert_eq!(s.fleet.len(), 400);
        assert_eq!(s.workload.spawns.len(), 6000);
        assert_eq!(s.config.duration_secs, 48.0 * 3600.0);

        let f = Scenario::paper_fig12(1);
        assert_eq!(f.fleet.len(), 100);
        assert_eq!(f.workload.initial_count(), 1500);
        assert!(!f.config.migrations_enabled);
    }

    #[test]
    fn mean_load_is_in_paper_regime() {
        // §III/Fig. 6: overall load averages around a third of the
        // fleet, swinging diurnally.
        let s = Scenario::paper_48h(7);
        let load = s.mean_overall_load();
        assert!(
            (0.2..0.5).contains(&load),
            "mean overall load {load} outside the Fig. 6 regime"
        );
    }
}
