//! Ready-made experiment scenarios matching the paper's two setups.

use dcsim::{Fleet, Policy, SimConfig, SimResult, Simulation, Workload};
use ecocloud_traces::arrivals::ArrivalProcess;
use ecocloud_traces::{Archetype, OpenSystemSpec, TraceConfig, TraceSet};

/// Default share of the diurnal swing carried by population churn in
/// the open-system scenarios (the rest stays in per-VM demand).
/// Calibrated in EXPERIMENTS.md Note 1: 0.6 balances ramp-hour high
/// migrations (driven by the demand share) against descent-hour
/// evacuations (driven by departures) and keeps the busiest migration
/// hour under 400 — well below the closed-system 630.
pub const DEFAULT_CHURN_SHARE: f64 = 0.6;

/// Open-system workload archetype selected on the CLI (`--churn`).
/// Maps to an [`Archetype`] with fixed default parameters so a kind is
/// a stable one-token cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnKind {
    /// Calibrated diurnal churn only.
    Steady,
    /// Steady churn plus a one-hour evening arrival burst each day.
    Flash,
    /// Steady churn plus 6-hourly cohorts of fixed-lifetime batch jobs.
    Batch,
    /// Steady churn with 30 % of arrivals spot/preemptible.
    Spot,
}

impl ChurnKind {
    /// Stable CLI / cache-key token.
    pub fn name(self) -> &'static str {
        match self {
            Self::Steady => "steady",
            Self::Flash => "flash",
            Self::Batch => "batch",
            Self::Spot => "spot",
        }
    }

    /// Parses a CLI churn-kind token.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "steady" => Ok(Self::Steady),
            "flash" => Ok(Self::Flash),
            "batch" => Ok(Self::Batch),
            "spot" => Ok(Self::Spot),
            other => Err(format!(
                "unknown churn kind '{other}' (steady|flash|batch|spot)"
            )),
        }
    }

    /// The trace-layer archetype with this kind's default parameters.
    pub fn archetype(self) -> Archetype {
        match self {
            Self::Steady => Archetype::Steady,
            Self::Flash => Archetype::FlashCrowd {
                peak_hour: 20.0,
                width_hours: 1.0,
                magnitude: 6.0,
                lifetime_secs: 1800.0,
            },
            Self::Batch => Archetype::BatchCohorts {
                period_hours: 6.0,
                cohort_frac: 0.05,
                lifetime_hours: 2.0,
            },
            Self::Spot => Archetype::Spot { fraction: 0.3 },
        }
    }
}

/// A complete simulation setup: fleet + workload + kernel config.
///
/// Scenarios are cheap to clone-and-tweak; `run` consumes nothing and
/// can be called once per policy for apples-to-apples comparisons
/// (same traces, same arrivals, same seeds everywhere but inside the
/// policy).
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The physical servers.
    pub fleet: Fleet,
    /// The VMs and their demand traces.
    pub workload: Workload,
    /// Kernel configuration.
    pub config: SimConfig,
}

impl Scenario {
    /// The paper's §III scenario: 400 heterogeneous servers, 6,000
    /// trace-driven VMs, 48 hours starting at midnight, migrations on.
    pub fn paper_48h(seed: u64) -> Self {
        let traces = TraceSet::generate(TraceConfig::paper_48h(seed));
        Self {
            fleet: Fleet::paper_400(),
            workload: Workload::all_vms_from_start(traces),
            config: SimConfig::paper_48h(seed),
        }
    }

    /// The paper's §IV scenario (Fig. 12): 100 six-core servers,
    /// 1,500 VMs initially spread out (non-consolidated, ≈10–30 % per
    /// server at midnight load), churn with a 2-hour mean lifetime,
    /// 18 hours, migrations inhibited — consolidation happens through
    /// the assignment procedure alone.
    pub fn paper_fig12(seed: u64) -> Self {
        let traces = TraceSet::generate(TraceConfig::paper_48h(seed));
        let process = ArrivalProcess::paper_fig12();
        let config = SimConfig::paper_fig12(seed);
        let workload = Workload::churn(traces, 1500, &process, config.duration_secs, seed);
        Self {
            fleet: Fleet::uniform(100, 6),
            workload,
            config,
        }
    }

    /// The §III scenario as an *open* system (the Note-1 fix): the
    /// diurnal swing is split between per-VM demand and population
    /// churn by `churn_share`, so diurnal load growth arrives as new
    /// placements instead of being forced through relocation.
    pub fn paper_48h_open(seed: u64, kind: ChurnKind, churn_share: f64) -> Self {
        Self::open_system(Fleet::paper_400(), 6000, 48, seed, kind, churn_share)
    }

    /// An open-system scenario with custom dimensions. `vms` is the
    /// daily-mean population the churn sustains; traces are generated
    /// with the demand half of the split envelope and wrap so late
    /// arrivals keep their diurnal shape.
    pub fn open_system(
        fleet: Fleet,
        vms: usize,
        hours: u64,
        seed: u64,
        kind: ChurnKind,
        churn_share: f64,
    ) -> Self {
        let spec = OpenSystemSpec {
            target_population: vms as f64,
            ..OpenSystemSpec::paper(churn_share, kind.archetype())
        };
        spec.validate();
        let traces = TraceSet::generate(TraceConfig {
            n_vms: vms,
            duration_secs: hours * 3600,
            envelope: spec.demand_envelope(),
            ..TraceConfig::paper_48h(seed)
        });
        let mut config = SimConfig::paper_48h(seed);
        config.duration_secs = (hours * 3600) as f64;
        let workload = Workload::open_system(traces, &spec, config.duration_secs, seed);
        Self {
            fleet,
            workload,
            config,
        }
    }

    /// A laptop-scale smoke scenario (40 servers, 600 VMs, 6 hours)
    /// for tests, docs and the quickstart example.
    pub fn small(seed: u64) -> Self {
        let traces = TraceSet::generate(TraceConfig {
            n_vms: 600,
            duration_secs: 6 * 3600,
            ..TraceConfig::small(seed)
        });
        let mut config = SimConfig::paper_48h(seed);
        config.duration_secs = 6.0 * 3600.0;
        Self {
            fleet: Fleet::thirds(40),
            workload: Workload::all_vms_from_start(traces),
            config,
        }
    }

    /// Runs the scenario under `policy`.
    pub fn run<P: Policy>(&self, policy: P) -> SimResult {
        Simulation::new(
            self.fleet.clone(),
            self.workload.clone(),
            self.config.clone(),
            policy,
        )
        .run()
    }

    /// Overall average load of the workload relative to the fleet
    /// (sanity statistic used by tests and reports).
    pub fn mean_overall_load(&self) -> f64 {
        let cap = self.fleet.total_capacity_mhz();
        let steps = self.workload.traces.config.steps();
        let step = self.workload.traces.config.step_secs;
        let sum: f64 = (0..steps)
            .map(|k| {
                self.workload
                    .traces
                    .total_demand_mhz_at((k as u64 * step) as f64)
                    / cap
            })
            .sum();
        sum / steps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecocloud_core::EcoCloudPolicy;

    #[test]
    fn small_scenario_consolidates() {
        let s = Scenario::small(3);
        let r = s.run(EcoCloudPolicy::paper(3));
        assert_eq!(r.policy_name, "ecocloud");
        assert!(
            r.summary.dropped_vms == 0,
            "dropped {}",
            r.summary.dropped_vms
        );
        assert!(
            r.final_powered < s.fleet.len(),
            "no consolidation: {} powered of {}",
            r.final_powered,
            s.fleet.len()
        );
        assert!(r.summary.energy_kwh > 0.0);
    }

    #[test]
    fn paper_scenarios_have_paper_dimensions() {
        let s = Scenario::paper_48h(1);
        assert_eq!(s.fleet.len(), 400);
        assert_eq!(s.workload.spawns.len(), 6000);
        assert_eq!(s.config.duration_secs, 48.0 * 3600.0);

        let f = Scenario::paper_fig12(1);
        assert_eq!(f.fleet.len(), 100);
        assert_eq!(f.workload.initial_count(), 1500);
        assert!(!f.config.migrations_enabled);
    }

    #[test]
    fn churn_kind_tokens_roundtrip() {
        for kind in [
            ChurnKind::Steady,
            ChurnKind::Flash,
            ChurnKind::Batch,
            ChurnKind::Spot,
        ] {
            assert_eq!(ChurnKind::parse(kind.name()).expect("parses"), kind);
        }
        assert!(ChurnKind::parse("bogus").is_err());
    }

    #[test]
    fn open_system_scenario_runs_and_conserves_vms() {
        let s = Scenario::open_system(Fleet::thirds(20), 200, 6, 11, ChurnKind::Spot, 0.5);
        assert!(s.workload.wrap_traces);
        let initial = s.workload.initial_count();
        assert!(
            initial < 200,
            "midnight population {initial} should sit below the daily mean"
        );
        assert!(s.workload.spawns.len() > initial, "no churn arrivals");
        assert!(s.workload.spawns.iter().any(|sp| sp.evictable));
        // finish() asserts arrived == departed + lost + alive in debug
        // builds, so completing the run is the conservation check.
        let r = s.run(EcoCloudPolicy::paper(11));
        assert!(r.summary.vms_arrived > 0);
        assert!(r.summary.vms_departed > 0);
    }

    #[test]
    fn paper_48h_open_has_paper_dimensions() {
        let s = Scenario::paper_48h_open(1, ChurnKind::Steady, DEFAULT_CHURN_SHARE);
        assert_eq!(s.fleet.len(), 400);
        assert_eq!(s.config.duration_secs, 48.0 * 3600.0);
        assert!(s.workload.wrap_traces);
        // The demand envelope carries only part of the total swing.
        let demand_amp = s.workload.traces.config.envelope.amplitude;
        assert!(demand_amp > 0.0 && demand_amp < 0.45, "amp {demand_amp}");
    }

    #[test]
    fn mean_load_is_in_paper_regime() {
        // §III/Fig. 6: overall load averages around a third of the
        // fleet, swinging diurnally.
        let s = Scenario::paper_48h(7);
        let load = s.mean_overall_load();
        assert!(
            (0.2..0.5).contains(&load),
            "mean overall load {load} outside the Fig. 6 regime"
        );
    }
}
