//! Command-line interface (the `ecocloud-cli` binary).
//!
//! Hand-rolled argument parsing (no CLI dependency) kept in the
//! library so it is unit-testable. Supported commands:
//!
//! ```text
//! ecocloud-cli run   [--servers N] [--vms N] [--hours H] [--policy P]
//!                    [--seed S] [--cores C] [--no-migrations]
//!                    [--events] [--json FILE]
//! ecocloud-cli compare [--servers N] [--vms N] [--hours H] [--seed S]
//! ecocloud-cli trace-gen --out FILE [--vms N] [--hours H] [--seed S]
//!                    [--format json|binary]
//! ecocloud-cli trace-stats FILE
//! ```

use crate::scenarios::{ChurnKind, Scenario, DEFAULT_CHURN_SHARE};
use crate::sweep::{self, ArtifactCache, PolicySpec, ScenarioSpec};
use dcsim::{
    Checkpoint, ControlPlaneConfig, FaultConfig, Fleet, Policy, ShardConfig, SimConfig, SimResult,
    Simulation, Workload,
};
use ecocloud_baselines::{BestFitPolicy, FirstFitPolicy, RandomPolicy};
use ecocloud_core::EcoCloudPolicy;
use ecocloud_metrics::sparkline;
use ecocloud_metrics::table::fmt_num;
use ecocloud_metrics::Table;
use ecocloud_traces::{TraceConfig, TraceSet};
use std::path::{Path, PathBuf};

/// A parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run one policy on one scenario.
    Run(RunArgs),
    /// Run every built-in policy on the same scenario.
    Compare(ScenarioArgs),
    /// Run one scenario under every fault profile (energy vs
    /// availability trade-off table).
    FaultSweep(ScenarioArgs),
    /// Run one scenario across message-loss probabilities (energy /
    /// SLA / placement-latency degradation table).
    LossSweep(ScenarioArgs),
    /// Replicated multi-seed sweep with cross-seed confidence
    /// intervals and a content-addressed run cache.
    Sweep(SweepArgs),
    /// Generate a trace file.
    TraceGen {
        /// Output path.
        out: PathBuf,
        /// Scenario dimensions (vms/hours/seed used).
        args: ScenarioArgs,
        /// `json` or `binary`.
        format: TraceFormat,
    },
    /// Print the Fig. 4/5 statistics of a trace file.
    TraceStats {
        /// Input path (`.json` or binary).
        path: PathBuf,
    },
    /// Print usage.
    Help,
}

/// Trace file format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// Pretty-printable JSON.
    Json,
    /// Compact binary (`ECOT`).
    Binary,
}

/// Scenario dimensions shared by several commands.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioArgs {
    /// Number of servers (fleet of 4/6/8-core thirds).
    pub servers: usize,
    /// Uniform cores per server; `None` keeps the thirds mix.
    pub cores: Option<u32>,
    /// Number of VMs.
    pub vms: usize,
    /// Simulated hours.
    pub hours: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for ScenarioArgs {
    fn default() -> Self {
        Self {
            servers: 100,
            cores: None,
            vms: 1500,
            hours: 24,
            seed: 42,
        }
    }
}

/// Arguments of the `run` command.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// Scenario dimensions.
    pub scenario: ScenarioArgs,
    /// Policy name: `ecocloud`, `best-fit`, `first-fit` or `random`.
    pub policy: String,
    /// Disable the migration procedure.
    pub no_migrations: bool,
    /// Record the structured event log.
    pub events: bool,
    /// Fault profile: `off`, `light`, `moderate` or `chaos`.
    pub faults: String,
    /// Control-plane profile: `off`, `ideal`, `lan` or `lossy`.
    pub control_plane: String,
    /// Open-system churn profile: `off`, `paper` (pins the full §III
    /// open scenario), or a kind (`steady`, `flash`, `batch`, `spot`)
    /// applied to the CLI dimensions.
    pub churn: String,
    /// Share of the diurnal swing carried by churn, in `[0, 1]`.
    pub churn_share: f64,
    /// Fleet shards `K` for the deterministic parallel engine (see
    /// `dcsim::shard`). Pure performance knob: output is byte-identical
    /// for every value, so it is *not* part of the canonical run spec
    /// and a checkpoint taken at one `K` resumes at any other.
    pub shards: usize,
    /// Worker threads for the shard fan-outs (`None` = one per shard).
    pub shard_threads: Option<usize>,
    /// Write the full `SimResult` as JSON here.
    pub json: Option<PathBuf>,
    /// Write crash-safe snapshots to this path (paired with
    /// `checkpoint_every_hours`).
    pub checkpoint: Option<PathBuf>,
    /// Snapshot cadence in simulated hours.
    pub checkpoint_every_hours: Option<f64>,
    /// Resume from this snapshot instead of starting fresh.
    pub resume: Option<PathBuf>,
}

/// Arguments of the `sweep` command.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepArgs {
    /// Scenario dimensions (`seed` is the base seed of the grid).
    pub scenario: ScenarioArgs,
    /// Policies to replicate (comma-separated on the CLI).
    pub policies: Vec<String>,
    /// Number of replications per policy (seeds `base..base+K`).
    pub seeds: usize,
    /// Worker threads; `None` uses the machine's parallelism.
    pub threads: Option<usize>,
    /// Disable the migration procedure.
    pub no_migrations: bool,
    /// Fault profile applied to every run.
    pub faults: String,
    /// Control-plane profile applied to every run.
    pub control_plane: String,
    /// Open-system churn kind (`off`, `steady`, `flash`, `batch`,
    /// `spot`) applied to every run.
    pub churn: String,
    /// Share of the diurnal swing carried by churn, in `[0, 1]`.
    pub churn_share: f64,
    /// Skip the artifact cache entirely.
    pub no_cache: bool,
    /// Artifact cache directory (default `out/cache`).
    pub cache_dir: Option<PathBuf>,
    /// Write the aggregate statistics as CSV here.
    pub csv: Option<PathBuf>,
    /// Per-run snapshot cadence in simulated hours; interrupted grids
    /// resume from the snapshots next to the cache artifacts.
    pub checkpoint_every_hours: Option<f64>,
}

/// Usage text.
pub const USAGE: &str = "\
ecocloud-cli — self-organizing VM consolidation simulator

USAGE:
  ecocloud-cli run   [--servers N] [--vms N] [--hours H] [--cores C]
                     [--policy ecocloud|best-fit|first-fit|random]
                     [--seed S] [--no-migrations] [--events] [--json FILE]
                     [--faults off|light|moderate|chaos]
                     [--control-plane off|ideal|lan|lossy]
                     [--churn off|paper|steady|flash|batch|spot]
                     [--churn-share F]
                     [--shards K] [--shard-threads T]
                     [--checkpoint FILE --checkpoint-every HOURS]
                     [--resume FILE]
  ecocloud-cli compare     [--servers N] [--vms N] [--hours H] [--seed S]
  ecocloud-cli fault-sweep [--servers N] [--vms N] [--hours H] [--seed S]
  ecocloud-cli loss-sweep  [--servers N] [--vms N] [--hours H] [--seed S]
  ecocloud-cli sweep [--seeds K] [--seed BASE] [--policy P1,P2,...]
                     [--servers N] [--vms N] [--hours H] [--cores C]
                     [--threads T] [--no-migrations]
                     [--faults PROFILE] [--control-plane PROFILE]
                     [--churn off|steady|flash|batch|spot] [--churn-share F]
                     [--cache-dir DIR] [--no-cache] [--csv FILE]
                     [--checkpoint-every HOURS]
  ecocloud-cli trace-gen   --out FILE [--vms N] [--hours H] [--seed S]
                           [--format json|binary]
  ecocloud-cli trace-stats FILE
  ecocloud-cli help
";

/// Parses an argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter().peekable();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    let mut scenario = ScenarioArgs::default();
    let mut policy = "ecocloud".to_string();
    let mut no_migrations = false;
    let mut events = false;
    let mut faults = "off".to_string();
    let mut control_plane = "off".to_string();
    let mut churn = "off".to_string();
    let mut churn_share = DEFAULT_CHURN_SHARE;
    let mut json = None;
    let mut out = None;
    let mut format = TraceFormat::Json;
    let mut seeds = 10usize;
    let mut threads = None;
    let mut no_cache = false;
    let mut cache_dir = None;
    let mut csv = None;
    let mut checkpoint = None;
    let mut checkpoint_every_hours = None;
    let mut resume = None;
    let mut shards = 1usize;
    let mut shard_threads = None;
    let mut positional = Vec::new();

    let take_value = |it: &mut std::iter::Peekable<std::slice::Iter<String>>,
                      flag: &str|
     -> Result<String, String> {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} expects a value"))
    };

    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--servers" => {
                scenario.servers = take_value(&mut it, "--servers")?
                    .parse()
                    .map_err(|e| format!("--servers: {e}"))?
            }
            "--cores" => {
                scenario.cores = Some(
                    take_value(&mut it, "--cores")?
                        .parse()
                        .map_err(|e| format!("--cores: {e}"))?,
                )
            }
            "--vms" => {
                scenario.vms = take_value(&mut it, "--vms")?
                    .parse()
                    .map_err(|e| format!("--vms: {e}"))?
            }
            "--hours" => {
                scenario.hours = take_value(&mut it, "--hours")?
                    .parse()
                    .map_err(|e| format!("--hours: {e}"))?
            }
            "--seed" => {
                scenario.seed = take_value(&mut it, "--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--policy" => policy = take_value(&mut it, "--policy")?,
            "--no-migrations" => no_migrations = true,
            "--events" => events = true,
            "--faults" => faults = take_value(&mut it, "--faults")?,
            "--control-plane" => control_plane = take_value(&mut it, "--control-plane")?,
            "--churn" => churn = take_value(&mut it, "--churn")?,
            "--churn-share" => {
                churn_share = take_value(&mut it, "--churn-share")?
                    .parse()
                    .map_err(|e| format!("--churn-share: {e}"))?
            }
            "--json" => json = Some(PathBuf::from(take_value(&mut it, "--json")?)),
            "--out" => out = Some(PathBuf::from(take_value(&mut it, "--out")?)),
            "--seeds" => {
                seeds = take_value(&mut it, "--seeds")?
                    .parse()
                    .map_err(|e| format!("--seeds: {e}"))?
            }
            "--threads" => {
                threads = Some(
                    take_value(&mut it, "--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?,
                )
            }
            "--shards" => {
                shards = take_value(&mut it, "--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
                if shards == 0 {
                    return Err("--shards must be at least 1".to_string());
                }
            }
            "--shard-threads" => {
                let t: usize = take_value(&mut it, "--shard-threads")?
                    .parse()
                    .map_err(|e| format!("--shard-threads: {e}"))?;
                if t == 0 {
                    return Err("--shard-threads must be at least 1".to_string());
                }
                shard_threads = Some(t);
            }
            "--no-cache" => no_cache = true,
            "--cache-dir" => cache_dir = Some(PathBuf::from(take_value(&mut it, "--cache-dir")?)),
            "--csv" => csv = Some(PathBuf::from(take_value(&mut it, "--csv")?)),
            "--checkpoint" => {
                checkpoint = Some(PathBuf::from(take_value(&mut it, "--checkpoint")?))
            }
            "--checkpoint-every" => {
                let h: f64 = take_value(&mut it, "--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every: {e}"))?;
                if !h.is_finite() || h <= 0.0 {
                    return Err(format!(
                        "--checkpoint-every must be a positive number of hours, got {h}"
                    ));
                }
                checkpoint_every_hours = Some(h);
            }
            "--resume" => resume = Some(PathBuf::from(take_value(&mut it, "--resume")?)),
            "--format" => {
                format = match take_value(&mut it, "--format")?.as_str() {
                    "json" => TraceFormat::Json,
                    "binary" => TraceFormat::Binary,
                    other => return Err(format!("unknown format '{other}'")),
                }
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag '{other}'"));
            }
            other => positional.push(other.to_string()),
        }
    }

    match cmd.as_str() {
        "run" => {
            if checkpoint.is_some() != checkpoint_every_hours.is_some() {
                return Err(
                    "--checkpoint and --checkpoint-every must be used together".to_string()
                );
            }
            Ok(Command::Run(RunArgs {
                scenario,
                policy,
                no_migrations,
                events,
                faults,
                control_plane,
                churn,
                churn_share,
                shards,
                shard_threads,
                json,
                checkpoint,
                checkpoint_every_hours,
                resume,
            }))
        }
        "compare" => Ok(Command::Compare(scenario)),
        "fault-sweep" => Ok(Command::FaultSweep(scenario)),
        "loss-sweep" => Ok(Command::LossSweep(scenario)),
        "sweep" => {
            if seeds == 0 {
                return Err("--seeds must be at least 1".to_string());
            }
            if threads == Some(0) {
                return Err("--threads must be at least 1".to_string());
            }
            let policies: Vec<String> = policy
                .split(',')
                .map(|p| p.trim().to_string())
                .filter(|p| !p.is_empty())
                .collect();
            if policies.is_empty() {
                return Err("--policy expects at least one policy name".to_string());
            }
            Ok(Command::Sweep(SweepArgs {
                scenario,
                policies,
                seeds,
                threads,
                no_migrations,
                faults,
                control_plane,
                churn,
                churn_share,
                no_cache,
                cache_dir,
                csv,
                checkpoint_every_hours,
            }))
        }
        "trace-gen" => Ok(Command::TraceGen {
            out: out.ok_or("trace-gen requires --out FILE")?,
            args: scenario,
            format,
        }),
        "trace-stats" => Ok(Command::TraceStats {
            path: PathBuf::from(
                positional
                    .first()
                    .ok_or("trace-stats requires a FILE argument")?,
            ),
        }),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(format!("unknown command '{other}'; try 'help'")),
    }
}

/// Builds the scenario described by the arguments.
pub fn build_scenario(a: &ScenarioArgs, no_migrations: bool, events: bool) -> Scenario {
    let traces = TraceSet::generate(TraceConfig {
        n_vms: a.vms,
        duration_secs: a.hours * 3600,
        ..TraceConfig::paper_48h(a.seed)
    });
    let mut config = SimConfig::paper_48h(a.seed);
    config.duration_secs = (a.hours * 3600) as f64;
    config.migrations_enabled = !no_migrations;
    config.record_events = events;
    let fleet = match a.cores {
        Some(c) => Fleet::uniform(a.servers, c),
        None => Fleet::thirds(a.servers),
    };
    Scenario {
        fleet,
        workload: Workload::all_vms_from_start(traces),
        config,
    }
}

/// Builds the open-system variant of the scenario described by the
/// arguments: `vms` becomes the daily-mean churn population and the
/// diurnal swing is split per `churn_share` (see
/// [`crate::scenarios::Scenario::open_system`]).
pub fn build_scenario_open(
    a: &ScenarioArgs,
    no_migrations: bool,
    events: bool,
    kind: ChurnKind,
    churn_share: f64,
) -> Scenario {
    let fleet = match a.cores {
        Some(c) => Fleet::uniform(a.servers, c),
        None => Fleet::thirds(a.servers),
    };
    let mut s = Scenario::open_system(fleet, a.vms, a.hours, a.seed, kind, churn_share);
    s.config.migrations_enabled = !no_migrations;
    s.config.record_events = events;
    s
}

/// Validates `--churn-share` and converts it to the integer percent
/// the cache key carries.
fn churn_share_pct(share: f64) -> Result<u8, String> {
    if !share.is_finite() || !(0.0..=1.0).contains(&share) {
        return Err(format!("--churn-share must be in [0, 1], got {share}"));
    }
    Ok((share * 100.0).round() as u8)
}

/// Resolves a fault-profile name to a [`FaultConfig`] seeded with the
/// scenario seed.
pub fn fault_profile(name: &str, seed: u64) -> Result<FaultConfig, String> {
    match name {
        "off" | "none" => Ok(FaultConfig::none()),
        "light" => Ok(FaultConfig::light(seed)),
        "moderate" => Ok(FaultConfig::moderate(seed)),
        "chaos" => Ok(FaultConfig::chaos(seed)),
        other => Err(format!(
            "unknown fault profile '{other}' (off|light|moderate|chaos)"
        )),
    }
}

/// Resolves a control-plane profile name to a [`ControlPlaneConfig`]
/// seeded with the scenario seed.
pub fn control_plane_profile(name: &str, seed: u64) -> Result<ControlPlaneConfig, String> {
    match name {
        "off" | "none" => Ok(ControlPlaneConfig::off()),
        "ideal" => Ok(ControlPlaneConfig::ideal(seed)),
        "lan" => Ok(ControlPlaneConfig::lan(seed)),
        "lossy" => Ok(ControlPlaneConfig::lossy(seed)),
        other => Err(format!(
            "unknown control-plane profile '{other}' (off|ideal|lan|lossy)"
        )),
    }
}

/// The canonical spec string embedded in snapshots written by the
/// `run` command. A resume checks the stored string against the one
/// derived from the *current* invocation, so any flag that changes the
/// deterministic trajectory must appear here. The format is pinned by
/// a test: extend it, never reorder or drop fields.
pub fn run_spec_canonical(args: &RunArgs) -> String {
    fn onoff(b: bool) -> &'static str {
        if b {
            "on"
        } else {
            "off"
        }
    }
    format!(
        "run(servers={},cores={},vms={},hours={},seed={},policy={},migrations={},events={},faults={},control={},churn={},share={})",
        args.scenario.servers,
        args.scenario
            .cores
            .map_or_else(|| "thirds".to_string(), |c| c.to_string()),
        args.scenario.vms,
        args.scenario.hours,
        args.scenario.seed,
        args.policy,
        onoff(!args.no_migrations),
        onoff(args.events),
        args.faults,
        args.control_plane,
        args.churn,
        (args.churn_share * 100.0).round() as i64,
    )
}

/// Drives one simulation to completion, optionally resuming from a
/// snapshot and optionally writing crash-safe snapshots on a fixed
/// simulated-time cadence. All progress goes to stderr: stdout stays
/// byte-identical between a straight run and any checkpointed /
/// resumed execution of the same spec.
fn run_with_checkpoints<P: Policy>(
    scenario: &Scenario,
    policy: P,
    spec: &str,
    every_secs: Option<f64>,
    ckpt_path: Option<&Path>,
    resume: Option<&Path>,
) -> Result<SimResult, String> {
    let (mut sim, mut seq) = match resume {
        Some(path) => {
            let (ckpt, loaded_from, skipped) = Checkpoint::read_with_fallback(path)
                .map_err(|e| format!("cannot resume from {}: {e}", path.display()))?;
            if let Some(err) = skipped {
                eprintln!(
                    "[checkpoint] skipped unusable snapshot {}: {err}",
                    path.display()
                );
            }
            let sim = Simulation::restore_from(
                scenario.fleet.clone(),
                scenario.workload.clone(),
                scenario.config.clone(),
                policy,
                &ckpt,
                spec,
            )
            .map_err(|e| format!("cannot resume from {}: {e}", loaded_from.display()))?;
            eprintln!(
                "[checkpoint] resumed snapshot #{} from {} at t = {} s",
                ckpt.seq,
                loaded_from.display(),
                ckpt.sim_time_secs
            );
            (sim, ckpt.seq + 1)
        }
        None => (
            Simulation::new(
                scenario.fleet.clone(),
                scenario.workload.clone(),
                scenario.config.clone(),
                policy,
            ),
            0,
        ),
    };
    if let (Some(every), Some(path)) = (every_secs, ckpt_path) {
        // First boundary strictly ahead of the current clock, so a
        // resumed run never rewrites the snapshot it came from.
        let mut next = every * ((sim.now() / every).floor() + 1.0);
        while sim.step().is_some() {
            while sim.now() >= next {
                sim.checkpoint(spec, seq)
                    .write_atomic(path)
                    .map_err(|e| format!("cannot write checkpoint {}: {e}", path.display()))?;
                eprintln!(
                    "[checkpoint] wrote snapshot #{seq} at t = {} s to {}",
                    sim.now(),
                    path.display()
                );
                seq += 1;
                next += every;
            }
        }
    } else {
        while sim.step().is_some() {}
    }
    Ok(sim.finish())
}

/// Resolves a policy name and runs it through
/// `run_with_checkpoints`. Shared by the `run` command and the
/// sweep engine's per-run snapshot path.
pub fn run_policy_checkpointed(
    scenario: &Scenario,
    policy: &str,
    seed: u64,
    spec: &str,
    every_secs: Option<f64>,
    ckpt_path: Option<&Path>,
    resume: Option<&Path>,
) -> Result<SimResult, String> {
    match policy {
        "ecocloud" => run_with_checkpoints(
            scenario,
            EcoCloudPolicy::paper(seed),
            spec,
            every_secs,
            ckpt_path,
            resume,
        ),
        "best-fit" => run_with_checkpoints(
            scenario,
            BestFitPolicy::paper(),
            spec,
            every_secs,
            ckpt_path,
            resume,
        ),
        "first-fit" => run_with_checkpoints(
            scenario,
            FirstFitPolicy::paper(),
            spec,
            every_secs,
            ckpt_path,
            resume,
        ),
        "random" => run_with_checkpoints(
            scenario,
            RandomPolicy::new(0.9, seed),
            spec,
            every_secs,
            ckpt_path,
            resume,
        ),
        other => Err(format!("unknown policy '{other}'")),
    }
}

fn run_policy(scenario: &Scenario, policy: &str, seed: u64) -> Result<SimResult, String> {
    run_policy_checkpointed(scenario, policy, seed, "", None, None, None)
}

fn print_result(res: &mut SimResult) {
    println!("policy            : {}", res.policy_name);
    println!(
        "overall load      : {}",
        sparkline(res.stats.overall_load.values(), 56)
    );
    println!(
        "active servers    : {}",
        sparkline(res.stats.active_servers.values(), 56)
    );
    println!(
        "power draw        : {}",
        sparkline(res.stats.power_w.values(), 56)
    );
    let s = res.summary.clone();
    println!("energy            : {} kWh", fmt_num(s.energy_kwh, 2));
    println!(
        "mean active       : {} servers",
        fmt_num(s.mean_active_servers, 1)
    );
    println!(
        "migrations        : {} low + {} high",
        s.total_low_migrations, s.total_high_migrations
    );
    println!(
        "switches          : {} on / {} off",
        s.total_activations, s.total_hibernations
    );
    println!(
        "violations        : {} ({} % < 30 s)",
        s.n_violations,
        fmt_num(100.0 * res.stats.violations_shorter_than(30.0), 1)
    );
    println!(
        "worst over-demand : {} % of VM-time",
        fmt_num(s.max_overdemand_pct, 4)
    );
    println!("dropped VMs       : {}", s.dropped_vms);
    // Open-system lines only — closed-system output stays byte-stable.
    if s.vms_departed + s.vms_preempted > 0 {
        println!(
            "population        : {} arrived = {} departed + {} lost + {} resident",
            s.vms_arrived,
            s.vms_departed,
            s.vms_lost,
            s.vms_arrived.saturating_sub(s.vms_departed + s.vms_lost)
        );
        if s.vms_preempted > 0 {
            println!("spot preemptions  : {}", s.vms_preempted);
        }
        let hours = res
            .stats
            .low_migrations
            .per_hour(0)
            .len()
            .max(res.stats.high_migrations.per_hour(0).len());
        let mut busiest = (0usize, 0u64);
        for h in 0..hours {
            let c = res.stats.low_migrations.count_in_hour(h)
                + res.stats.high_migrations.count_in_hour(h);
            if c > busiest.1 {
                busiest = (h, c);
            }
        }
        println!(
            "busiest hour      : {} migrations (hour {})",
            busiest.1, busiest.0
        );
    }
    if s.server_crashes + s.wake_failures + s.migration_failures + s.vms_displaced > 0 {
        println!(
            "server crashes    : {} ({} repaired)",
            s.server_crashes, s.server_repairs
        );
        println!("wake failures     : {}", s.wake_failures);
        println!(
            "migration faults  : {} injected ({} aborts total)",
            s.migration_failures, s.migrations_aborted
        );
        println!(
            "displaced VMs     : {} ({} re-placed, {} lost)",
            s.vms_displaced, s.vms_replaced, s.vms_lost
        );
    }
    if s.exchanges_started > 0 {
        println!(
            "exchanges         : {} started = {} committed + {} abandoned + {} aborted",
            s.exchanges_started, s.exchanges_committed, s.exchanges_abandoned, s.exchanges_aborted
        );
        println!(
            "invitations       : {} sent = {} accept + {} decline + {} lost + {} late",
            s.invitations_sent, s.invite_accepts, s.invite_declines, s.invite_losses,
            s.invite_timeouts
        );
        println!(
            "commits           : {} sent, {} NACKed, {} lost, {} re-broadcasts",
            s.commits_sent, s.commit_nacks, s.commit_losses, s.exchange_rebroadcasts
        );
        println!(
            "placement p99     : {} s",
            fmt_num(s.placement_p99_secs, 3)
        );
    }
    if res.events.is_enabled() {
        println!("event log         : {} entries", res.events.len());
    }
}

/// Executes a parsed command. Returns an error string for exit-code 1.
pub fn execute(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Run(args) => {
            let mut scenario = match args.churn.as_str() {
                "off" | "none" => build_scenario(&args.scenario, args.no_migrations, args.events),
                "paper" => {
                    // Pins the full §III open-system experiment
                    // (400 servers, 6,000 mean VMs, 48 h) regardless of
                    // the dimension flags.
                    churn_share_pct(args.churn_share)?;
                    let mut s = Scenario::paper_48h_open(
                        args.scenario.seed,
                        ChurnKind::Steady,
                        args.churn_share,
                    );
                    s.config.migrations_enabled = !args.no_migrations;
                    s.config.record_events = args.events;
                    s
                }
                other => {
                    let kind = ChurnKind::parse(other).map_err(|_| {
                        format!(
                            "unknown churn profile '{other}' \
                             (off|paper|steady|flash|batch|spot)"
                        )
                    })?;
                    churn_share_pct(args.churn_share)?;
                    build_scenario_open(
                        &args.scenario,
                        args.no_migrations,
                        args.events,
                        kind,
                        args.churn_share,
                    )
                }
            };
            scenario.config.faults = fault_profile(&args.faults, args.scenario.seed)?;
            scenario.config.control_plane =
                control_plane_profile(&args.control_plane, args.scenario.seed)?;
            scenario.config.shard = ShardConfig {
                shards: args.shards,
                threads: args.shard_threads.unwrap_or(0),
            };
            // Validate up front so a bad configuration exits cleanly
            // naming the offending field instead of panicking inside
            // the engine.
            scenario.config.validate().map_err(|e| e.to_string())?;
            eprintln!(
                "running {} servers / {} VMs / {} h, policy {} ...",
                scenario.fleet.len(),
                scenario.workload.spawns.len(),
                (scenario.config.duration_secs / 3600.0) as u64,
                args.policy
            );
            let spec = run_spec_canonical(&args);
            let mut res = run_policy_checkpointed(
                &scenario,
                &args.policy,
                args.scenario.seed,
                &spec,
                args.checkpoint_every_hours.map(|h| h * 3600.0),
                args.checkpoint.as_deref(),
                args.resume.as_deref(),
            )?;
            print_result(&mut res);
            if let Some(path) = args.json {
                let json = serde_json::to_string(&res).map_err(|e| e.to_string())?;
                std::fs::write(&path, json).map_err(|e| e.to_string())?;
                eprintln!("wrote {}", path.display());
            }
            Ok(())
        }
        Command::Compare(scenario_args) => {
            let scenario = build_scenario(&scenario_args, false, false);
            let mut t = Table::new([
                "policy",
                "servers",
                "kWh",
                "migrations",
                "switches",
                "overdemand%",
                "dropped",
            ]);
            for policy in ["ecocloud", "best-fit", "first-fit", "random"] {
                eprintln!("running {policy} ...");
                let res = run_policy(&scenario, policy, scenario_args.seed)?;
                let s = res.summary;
                t.push_row([
                    policy.to_string(),
                    fmt_num(s.mean_active_servers, 1),
                    fmt_num(s.energy_kwh, 1),
                    format!("{}", s.total_low_migrations + s.total_high_migrations),
                    format!("{}", s.total_activations + s.total_hibernations),
                    fmt_num(s.max_overdemand_pct, 3),
                    format!("{}", s.dropped_vms),
                ]);
            }
            println!("{}", t.render());
            Ok(())
        }
        Command::FaultSweep(scenario_args) => {
            // Same scenario, ecoCloud policy, increasingly hostile
            // fault schedules: how much availability does the
            // consolidated fleet trade for its energy savings?
            let mut t = Table::new([
                "faults",
                "kWh",
                "servers",
                "crashes",
                "wake-fail",
                "mig-fail",
                "displaced",
                "lost",
                "avail%",
            ]);
            for profile in ["off", "light", "moderate", "chaos"] {
                eprintln!("running fault profile {profile} ...");
                let mut scenario = build_scenario(&scenario_args, false, false);
                scenario.config.faults = fault_profile(profile, scenario_args.seed)?;
                let res = run_policy(&scenario, "ecocloud", scenario_args.seed)?;
                let s = res.summary;
                let served = scenario_args.vms as u64 - s.dropped_vms;
                let avail = if served > 0 {
                    100.0 * (served - s.vms_lost) as f64 / served as f64
                } else {
                    100.0
                };
                t.push_row([
                    profile.to_string(),
                    fmt_num(s.energy_kwh, 1),
                    fmt_num(s.mean_active_servers, 1),
                    format!("{}", s.server_crashes),
                    format!("{}", s.wake_failures),
                    format!("{}", s.migration_failures),
                    format!("{}", s.vms_displaced),
                    format!("{}", s.vms_lost),
                    fmt_num(avail, 2),
                ]);
            }
            println!("{}", t.render());
            Ok(())
        }
        Command::LossSweep(scenario_args) => {
            // Same scenario, ecoCloud policy, LAN-like message model
            // with increasing loss: how gracefully does the placement
            // protocol degrade when the network does?
            let mut t = Table::new([
                "loss%",
                "kWh",
                "servers",
                "violations",
                "p99 place s",
                "committed",
                "abandoned",
                "re-bcast",
                "dropped",
            ]);
            for loss in [0.0, 0.01, 0.05, 0.2] {
                eprintln!("running loss probability {} ...", loss);
                let mut scenario = build_scenario(&scenario_args, false, false);
                scenario.config.control_plane =
                    ControlPlaneConfig::with_loss(loss, scenario_args.seed);
                scenario.config.validate().map_err(|e| e.to_string())?;
                let res = run_policy(&scenario, "ecocloud", scenario_args.seed)?;
                let s = res.summary;
                t.push_row([
                    fmt_num(100.0 * loss, 0),
                    fmt_num(s.energy_kwh, 1),
                    fmt_num(s.mean_active_servers, 1),
                    format!("{}", s.n_violations),
                    fmt_num(s.placement_p99_secs, 3),
                    format!("{}", s.exchanges_committed),
                    format!("{}", s.exchanges_abandoned),
                    format!("{}", s.exchange_rebroadcasts),
                    format!("{}", s.dropped_vms),
                ]);
            }
            println!("{}", t.render());
            Ok(())
        }
        Command::Sweep(args) => {
            let churn = match args.churn.as_str() {
                "off" | "none" => None,
                other => {
                    let kind = ChurnKind::parse(other).map_err(|_| {
                        format!(
                            "unknown churn profile '{other}' for sweep \
                             (off|steady|flash|batch|spot)"
                        )
                    })?;
                    Some((kind, churn_share_pct(args.churn_share)?))
                }
            };
            let scenario_spec = ScenarioSpec::Custom {
                servers: args.scenario.servers,
                cores: args.scenario.cores,
                vms: args.scenario.vms,
                hours: args.scenario.hours,
                migrations: !args.no_migrations,
                server_utilization: false,
                churn,
            };
            // Validate the profile names before any work happens.
            fault_profile(&args.faults, 0)?;
            control_plane_profile(&args.control_plane, 0)?;
            if args.checkpoint_every_hours.is_some() && args.no_cache {
                return Err(
                    "--checkpoint-every needs the artifact cache (snapshots live next to \
                     the cached artifacts); drop --no-cache"
                        .to_string(),
                );
            }
            let cache = if args.no_cache {
                ArtifactCache::disabled()
            } else {
                ArtifactCache::new(
                    args.cache_dir
                        .clone()
                        .unwrap_or_else(|| PathBuf::from("out/cache")),
                )
            };
            let threads = args.threads.unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
            });
            let mut t = Table::new([
                "policy",
                "kWh",
                "±95%",
                "servers",
                "±95%",
                "migrations",
                "±95%",
                "overdemand%",
                "±95%",
                "dropped",
                "n",
            ]);
            let mut csv = String::from("policy,metric,mean,ci95,std_dev,min,max,n\n");
            let mut cache_hits = 0;
            let mut executed = 0;
            for name in &args.policies {
                let policy = PolicySpec::parse(name)?;
                let mut specs =
                    sweep::seed_grid(&scenario_spec, policy, args.scenario.seed, args.seeds);
                for spec in &mut specs {
                    spec.faults = args.faults.clone();
                    spec.control_plane = args.control_plane.clone();
                }
                let outcome = sweep::run_grid_with_checkpoints(
                    &specs,
                    threads,
                    &cache,
                    args.checkpoint_every_hours.map(|h| h * 3600.0),
                )?;
                cache_hits += outcome.cache_hits;
                executed += outcome.executed;
                let agg = sweep::aggregate(&outcome.artifacts);
                let metric = |m: &str| {
                    agg.metric(m)
                        .unwrap_or_else(|| panic!("aggregate lacks metric {m}"))
                        .clone()
                };
                let migrations = metric("total_migrations");
                let kwh = metric("energy_kwh");
                let servers = metric("mean_active_servers");
                let over = metric("max_overdemand_pct");
                let dropped = metric("dropped_vms");
                t.push_row([
                    name.clone(),
                    fmt_num(kwh.mean(), 1),
                    fmt_num(kwh.ci95_half_width(), 1),
                    fmt_num(servers.mean(), 1),
                    fmt_num(servers.ci95_half_width(), 1),
                    fmt_num(migrations.mean(), 0),
                    fmt_num(migrations.ci95_half_width(), 0),
                    fmt_num(over.mean(), 3),
                    fmt_num(over.ci95_half_width(), 3),
                    fmt_num(dropped.mean(), 1),
                    format!("{}", args.seeds),
                ]);
                for (metric_name, r) in &agg.metrics {
                    csv.push_str(&format!(
                        "{name},{metric_name},{},{},{},{},{},{}\n",
                        r.mean(),
                        r.ci95_half_width(),
                        r.std_dev(),
                        r.min(),
                        r.max(),
                        r.count()
                    ));
                }
            }
            println!("{}", t.render());
            // One fixed-format accounting line so scripts (and CI) can
            // assert cache behaviour: `sweep cache: H hits, E executed`.
            println!("sweep cache: {cache_hits} hits, {executed} executed");
            if let Some(path) = args.csv {
                if let Some(dir) = path.parent() {
                    if !dir.as_os_str().is_empty() {
                        std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
                    }
                }
                std::fs::write(&path, csv).map_err(|e| e.to_string())?;
                eprintln!("wrote {}", path.display());
            }
            Ok(())
        }
        Command::TraceGen { out, args, format } => {
            let set = TraceSet::generate(TraceConfig {
                n_vms: args.vms,
                duration_secs: args.hours * 3600,
                ..TraceConfig::paper_48h(args.seed)
            });
            match format {
                TraceFormat::Json => {
                    ecocloud_traces::io::save_json(&set, &out).map_err(|e| e.to_string())?
                }
                TraceFormat::Binary => {
                    ecocloud_traces::io::save_binary(&set, &out).map_err(|e| e.to_string())?
                }
            }
            println!(
                "wrote {} VMs x {} samples to {}",
                set.len(),
                set.config.steps(),
                out.display()
            );
            Ok(())
        }
        Command::TraceStats { path } => {
            // A directory is treated as a real PlanetLab day
            // (one file per VM, one CPU percentage per line).
            let set = if path.is_dir() {
                ecocloud_traces::planetlab::import_dir(&path, 300)
                    .map_err(|e| format!("cannot import {}: {e}", path.display()))?
            } else {
                ecocloud_traces::io::load_binary(&path)
                    .or_else(|_| ecocloud_traces::io::load_json(&path))
                    .map_err(|e| format!("cannot read {}: {e}", path.display()))?
            };
            let h = ecocloud_traces::stats::avg_utilization_histogram(&set, 40);
            println!("VMs               : {}", set.len());
            println!("samples per VM    : {}", set.config.steps());
            println!(
                "avg util          : median {} %, p95 {} %, below 20 %: {} %",
                fmt_num(h.quantile(0.5), 1),
                fmt_num(h.quantile(0.95), 1),
                fmt_num(100.0 * h.fraction_below(20.0), 1)
            );
            println!(
                "deviation ±10 pts : {} % of samples",
                fmt_num(
                    100.0 * ecocloud_traces::stats::fraction_within_deviation(&set, 10.0),
                    1
                )
            );
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_run_with_flags() {
        let cmd = parse(&argv(
            "run --servers 50 --vms 700 --hours 6 --policy best-fit --seed 9 --events",
        ))
        .expect("parses");
        match cmd {
            Command::Run(a) => {
                assert_eq!(a.scenario.servers, 50);
                assert_eq!(a.scenario.vms, 700);
                assert_eq!(a.scenario.hours, 6);
                assert_eq!(a.policy, "best-fit");
                assert_eq!(a.scenario.seed, 9);
                assert!(a.events);
                assert!(!a.no_migrations);
                assert!(a.json.is_none());
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_trace_gen() {
        let cmd = parse(&argv(
            "trace-gen --out /tmp/t.ecot --format binary --vms 10",
        ))
        .expect("parses");
        match cmd {
            Command::TraceGen { out, args, format } => {
                assert_eq!(out, PathBuf::from("/tmp/t.ecot"));
                assert_eq!(args.vms, 10);
                assert_eq!(format, TraceFormat::Binary);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parses_trace_stats_positional() {
        let cmd = parse(&argv("trace-stats some/file.json")).expect("parses");
        assert_eq!(
            cmd,
            Command::TraceStats {
                path: PathBuf::from("some/file.json")
            }
        );
    }

    #[test]
    fn rejects_unknown_flag_and_command() {
        assert!(parse(&argv("run --bogus 1")).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("trace-gen --vms 5")).is_err(), "missing --out");
        assert!(parse(&argv("run --servers")).is_err(), "missing value");
    }

    proptest::proptest! {
        #[test]
        fn prop_parse_never_panics(
            tokens in proptest::collection::vec("[a-z0-9=./-]{0,12}", 0..8),
        ) {
            // Arbitrary token soup must yield Ok or Err, never a panic.
            let _ = parse(&tokens);
        }
    }

    #[test]
    fn empty_args_is_help() {
        assert_eq!(parse(&[]).expect("ok"), Command::Help);
        assert_eq!(parse(&argv("help")).expect("ok"), Command::Help);
        assert_eq!(parse(&argv("--help")).expect("ok"), Command::Help);
    }

    #[test]
    fn build_scenario_respects_dimensions() {
        let a = ScenarioArgs {
            servers: 12,
            cores: Some(4),
            vms: 30,
            hours: 2,
            seed: 5,
        };
        let s = build_scenario(&a, true, true);
        assert_eq!(s.fleet.len(), 12);
        assert!(s.fleet.specs.iter().all(|sp| sp.cores == 4));
        assert_eq!(s.workload.spawns.len(), 30);
        assert_eq!(s.config.duration_secs, 7200.0);
        assert!(!s.config.migrations_enabled);
        assert!(s.config.record_events);
    }

    #[test]
    fn run_command_executes_end_to_end() {
        let cmd = parse(&argv(
            "run --servers 6 --vms 30 --hours 1 --policy ecocloud --seed 3",
        ))
        .expect("parses");
        execute(cmd).expect("runs");
    }

    #[test]
    fn compare_command_executes() {
        let cmd = parse(&argv("compare --servers 5 --vms 20 --hours 1")).expect("parses");
        execute(cmd).expect("runs");
    }

    #[test]
    fn parses_fault_flags_and_sweep() {
        match parse(&argv("run --faults chaos")).expect("parses") {
            Command::Run(a) => assert_eq!(a.faults, "chaos"),
            other => panic!("wrong command {other:?}"),
        }
        match parse(&argv("run")).expect("parses") {
            Command::Run(a) => assert_eq!(a.faults, "off"),
            other => panic!("wrong command {other:?}"),
        }
        assert_eq!(
            parse(&argv("fault-sweep --servers 9")).expect("parses"),
            Command::FaultSweep(ScenarioArgs {
                servers: 9,
                ..ScenarioArgs::default()
            })
        );
    }

    #[test]
    fn fault_profile_names_resolve() {
        assert!(!fault_profile("off", 1).expect("off").enabled());
        for name in ["light", "moderate", "chaos"] {
            let f = fault_profile(name, 1).expect(name);
            assert!(f.enabled(), "{name} should enable faults");
            f.validate().expect(name);
        }
        assert!(fault_profile("bogus", 1).is_err());
    }

    #[test]
    fn parses_control_plane_flag_and_loss_sweep() {
        match parse(&argv("run --control-plane lossy")).expect("parses") {
            Command::Run(a) => assert_eq!(a.control_plane, "lossy"),
            other => panic!("wrong command {other:?}"),
        }
        match parse(&argv("run")).expect("parses") {
            Command::Run(a) => assert_eq!(a.control_plane, "off"),
            other => panic!("wrong command {other:?}"),
        }
        assert_eq!(
            parse(&argv("loss-sweep --servers 7")).expect("parses"),
            Command::LossSweep(ScenarioArgs {
                servers: 7,
                ..ScenarioArgs::default()
            })
        );
    }

    #[test]
    fn control_plane_profile_names_resolve() {
        assert!(!control_plane_profile("off", 1).expect("off").enabled());
        for name in ["ideal", "lan", "lossy"] {
            let c = control_plane_profile(name, 1).expect(name);
            assert!(c.enabled(), "{name} should enable the control plane");
            c.validate().expect(name);
        }
        assert!(control_plane_profile("bogus", 1).is_err());
    }

    #[test]
    fn run_with_lossy_control_plane_and_chaos_executes() {
        let cmd = parse(&argv(
            "run --servers 6 --vms 30 --hours 1 --seed 4 --faults chaos --control-plane lossy",
        ))
        .expect("parses");
        execute(cmd).expect("runs");
    }

    #[test]
    fn run_with_faults_executes_and_reports() {
        let cmd = parse(&argv(
            "run --servers 6 --vms 30 --hours 2 --policy ecocloud --seed 3 --faults chaos",
        ))
        .expect("parses");
        execute(cmd).expect("runs");
    }

    #[test]
    fn fault_sweep_executes() {
        let cmd = parse(&argv("fault-sweep --servers 5 --vms 15 --hours 1")).expect("parses");
        execute(cmd).expect("runs");
    }

    #[test]
    fn parses_sweep_flags() {
        match parse(&argv(
            "sweep --seeds 4 --seed 7 --policy ecocloud,best-fit --threads 2 \
             --servers 20 --vms 80 --hours 2 --no-cache --csv out/s.csv",
        ))
        .expect("parses")
        {
            Command::Sweep(a) => {
                assert_eq!(a.seeds, 4);
                assert_eq!(a.scenario.seed, 7);
                assert_eq!(a.policies, vec!["ecocloud", "best-fit"]);
                assert_eq!(a.threads, Some(2));
                assert_eq!(a.scenario.servers, 20);
                assert!(a.no_cache);
                assert_eq!(a.csv, Some(PathBuf::from("out/s.csv")));
                assert!(a.cache_dir.is_none());
            }
            other => panic!("wrong command {other:?}"),
        }
        match parse(&argv("sweep")).expect("parses") {
            Command::Sweep(a) => {
                assert_eq!(a.seeds, 10);
                assert_eq!(a.policies, vec!["ecocloud"]);
                assert_eq!(a.threads, None);
                assert!(!a.no_cache);
            }
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse(&argv("sweep --seeds 0")).is_err());
        assert!(parse(&argv("sweep --threads 0")).is_err());
        assert!(parse(&argv("sweep --policy ,")).is_err());
    }

    #[test]
    fn parses_churn_flags() {
        match parse(&argv("run --churn paper --churn-share 0.7")).expect("parses") {
            Command::Run(a) => {
                assert_eq!(a.churn, "paper");
                assert_eq!(a.churn_share, 0.7);
            }
            other => panic!("wrong command {other:?}"),
        }
        match parse(&argv("run")).expect("parses") {
            Command::Run(a) => {
                assert_eq!(a.churn, "off");
                assert_eq!(a.churn_share, DEFAULT_CHURN_SHARE);
            }
            other => panic!("wrong command {other:?}"),
        }
        match parse(&argv("sweep --churn flash")).expect("parses") {
            Command::Sweep(a) => assert_eq!(a.churn, "flash"),
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse(&argv("run --churn-share x")).is_err());
    }

    #[test]
    fn unknown_churn_profile_is_an_error() {
        let cmd = parse(&argv("run --servers 6 --vms 30 --hours 1 --churn bogus"))
            .expect("parses");
        let err = execute(cmd).expect_err("must fail");
        assert!(err.contains("bogus"), "error must name the profile: {err}");
        let cmd = parse(&argv("sweep --seeds 1 --churn paper")).expect("parses");
        let err = execute(cmd).expect_err("paper is run-only");
        assert!(err.contains("paper"), "error must name the profile: {err}");
        let cmd = parse(&argv("run --servers 6 --vms 30 --hours 1 --churn steady \
                               --churn-share 1.5"))
            .expect("parses");
        assert!(execute(cmd).is_err(), "share outside [0, 1] must fail");
    }

    #[test]
    fn build_scenario_open_respects_dimensions() {
        let a = ScenarioArgs {
            servers: 10,
            cores: Some(6),
            vms: 60,
            hours: 2,
            seed: 5,
        };
        let s = build_scenario_open(&a, true, false, ChurnKind::Steady, 0.5);
        assert_eq!(s.fleet.len(), 10);
        assert!(s.fleet.specs.iter().all(|sp| sp.cores == 6));
        assert_eq!(s.config.duration_secs, 7200.0);
        assert!(!s.config.migrations_enabled);
        assert!(s.workload.wrap_traces);
    }

    #[test]
    fn run_with_churn_executes_end_to_end() {
        let cmd = parse(&argv(
            "run --servers 8 --vms 40 --hours 2 --seed 6 --churn spot",
        ))
        .expect("parses");
        execute(cmd).expect("runs");
    }

    #[test]
    fn sweep_executes_and_caches() {
        let dir = std::env::temp_dir().join(format!("ecocloud_cli_sweep_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = dir.join("cache");
        let csv = dir.join("sweep.csv");
        let line = format!(
            "sweep --servers 6 --vms 24 --hours 1 --seeds 2 --seed 5 --threads 2 \
             --policy ecocloud --cache-dir {} --csv {}",
            cache.display(),
            csv.display()
        );
        execute(parse(&argv(&line)).expect("parses")).expect("cold sweep runs");
        let body = std::fs::read_to_string(&csv).expect("csv written");
        assert!(body.starts_with("policy,metric,mean,ci95"));
        assert!(body.contains("ecocloud,energy_kwh,"));
        assert_eq!(
            std::fs::read_dir(&cache).expect("cache dir").count(),
            2,
            "one artifact per seed"
        );
        // Second invocation must be served entirely from the cache and
        // reproduce the same CSV bytes.
        execute(parse(&argv(&line)).expect("parses")).expect("warm sweep runs");
        assert_eq!(std::fs::read_to_string(&csv).expect("csv"), body);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parses_checkpoint_flags() {
        match parse(&argv(
            "run --servers 6 --vms 20 --hours 2 --checkpoint /tmp/a.ckpt \
             --checkpoint-every 0.5 --resume /tmp/a.ckpt",
        ))
        .expect("parses")
        {
            Command::Run(a) => {
                assert_eq!(a.checkpoint, Some(PathBuf::from("/tmp/a.ckpt")));
                assert_eq!(a.checkpoint_every_hours, Some(0.5));
                assert_eq!(a.resume, Some(PathBuf::from("/tmp/a.ckpt")));
            }
            other => panic!("wrong command {other:?}"),
        }
        match parse(&argv("run")).expect("parses") {
            Command::Run(a) => {
                assert!(a.checkpoint.is_none());
                assert!(a.checkpoint_every_hours.is_none());
                assert!(a.resume.is_none());
            }
            other => panic!("wrong command {other:?}"),
        }
        match parse(&argv("sweep --checkpoint-every 1")).expect("parses") {
            Command::Sweep(a) => assert_eq!(a.checkpoint_every_hours, Some(1.0)),
            other => panic!("wrong command {other:?}"),
        }
        // Cadence must be a positive number of hours.
        assert!(parse(&argv("run --checkpoint-every 0")).is_err());
        assert!(parse(&argv("run --checkpoint-every -1")).is_err());
        assert!(parse(&argv("run --checkpoint-every nope")).is_err());
        // The pair must come together on `run`.
        assert!(parse(&argv("run --checkpoint /tmp/a.ckpt")).is_err());
        assert!(parse(&argv("run --checkpoint-every 1")).is_err());
    }

    #[test]
    fn sweep_checkpoints_require_the_cache() {
        let cmd = parse(&argv("sweep --seeds 1 --checkpoint-every 1 --no-cache"))
            .expect("parses");
        let err = execute(cmd).expect_err("must fail");
        assert!(err.contains("--no-cache"), "error must explain: {err}");
    }

    #[test]
    fn run_spec_canonical_is_pinned() {
        // The spec string is an on-disk compatibility surface (it is
        // embedded in snapshots); this test pins its exact format.
        let cmd = parse(&argv(
            "run --servers 6 --vms 30 --hours 2 --policy best-fit --seed 9 \
             --faults light --control-plane lan --churn spot --churn-share 0.25",
        ))
        .expect("parses");
        let Command::Run(args) = cmd else {
            panic!("wrong command");
        };
        assert_eq!(
            run_spec_canonical(&args),
            "run(servers=6,cores=thirds,vms=30,hours=2,seed=9,policy=best-fit,\
             migrations=on,events=off,faults=light,control=lan,churn=spot,share=25)"
        );
        let Command::Run(defaults) = parse(&argv("run")).expect("parses") else {
            panic!("wrong command");
        };
        assert_eq!(
            run_spec_canonical(&defaults),
            "run(servers=100,cores=thirds,vms=1500,hours=24,seed=42,policy=ecocloud,\
             migrations=on,events=off,faults=off,control=off,churn=off,share=60)"
        );
    }

    #[test]
    fn resume_from_missing_file_is_a_named_error() {
        let cmd = parse(&argv(
            "run --servers 6 --vms 20 --hours 1 --resume /nonexistent/dir/x.ckpt",
        ))
        .expect("parses");
        let err = execute(cmd).expect_err("must fail");
        assert!(
            err.contains("/nonexistent/dir/x.ckpt"),
            "error must name the snapshot file: {err}"
        );
    }

    #[test]
    fn resume_from_corrupt_file_is_a_named_error() {
        let dir = std::env::temp_dir().join(format!("ecocloud_cli_ckpt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("garbage.ckpt");
        std::fs::write(&path, b"not a checkpoint at all").expect("write");
        let cmd = parse(&argv(&format!(
            "run --servers 6 --vms 20 --hours 1 --resume {}",
            path.display()
        )))
        .expect("parses");
        let err = execute(cmd).expect_err("must fail");
        assert!(
            err.contains("garbage.ckpt"),
            "error must name the snapshot file: {err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_then_resume_runs_end_to_end() {
        let dir = std::env::temp_dir().join(format!("ecocloud_cli_resume_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("run.ckpt");
        let base = "run --servers 6 --vms 24 --hours 2 --seed 11";
        execute(
            parse(&argv(&format!(
                "{base} --checkpoint {} --checkpoint-every 1",
                path.display()
            )))
            .expect("parses"),
        )
        .expect("checkpointed run");
        assert!(path.exists(), "snapshot must have been written");
        execute(
            parse(&argv(&format!("{base} --resume {}", path.display()))).expect("parses"),
        )
        .expect("resumed run");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_with_mismatched_spec_is_explained() {
        let dir =
            std::env::temp_dir().join(format!("ecocloud_cli_mismatch_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("run.ckpt");
        execute(
            parse(&argv(&format!(
                "run --servers 6 --vms 24 --hours 2 --seed 11 \
                 --checkpoint {} --checkpoint-every 1",
                path.display()
            )))
            .expect("parses"),
        )
        .expect("checkpointed run");
        // Same snapshot, different seed: the run it describes is not
        // the run being resumed, and the error must say so.
        let err = execute(
            parse(&argv(&format!(
                "run --servers 6 --vms 24 --hours 2 --seed 12 --resume {}",
                path.display()
            )))
            .expect("parses"),
        )
        .expect_err("must fail");
        assert!(
            err.contains("seed=11") && err.contains("seed=12"),
            "error must show both specs: {err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_resumes_interrupted_grid_from_snapshots() {
        let dir =
            std::env::temp_dir().join(format!("ecocloud_sweep_resume_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ArtifactCache::new(dir.join("cache"));
        let spec = sweep::RunSpec::new(
            ScenarioSpec::Custom {
                servers: 6,
                cores: None,
                vms: 24,
                hours: 2,
                migrations: true,
                server_utilization: false,
                churn: None,
            },
            PolicySpec::EcoCloud,
            11,
        );
        let ckpt = cache
            .path_for(&spec)
            .expect("cache enabled")
            .with_extension("ckpt");
        std::fs::create_dir_all(ckpt.parent().expect("parent")).expect("mkdir");
        // Simulate an interrupted worker: a half-way snapshot exists
        // but no artifact does.
        let scenario = spec.scenario.build(spec.seed);
        let mut sim = dcsim::Simulation::new(
            scenario.fleet.clone(),
            scenario.workload.clone(),
            scenario.config.clone(),
            ecocloud_core::EcoCloudPolicy::paper(spec.seed),
        );
        while sim.now() < 3600.0 && sim.step().is_some() {}
        sim.checkpoint(&spec.canonical(), 0)
            .write_atomic(&ckpt)
            .expect("snapshot");
        // The grid must pick the snapshot up, finish the run, and
        // produce the same artifact as an uninterrupted execution.
        let outcome = sweep::run_grid_with_checkpoints(
            std::slice::from_ref(&spec),
            1,
            &cache,
            Some(3600.0),
        )
        .expect("grid");
        assert_eq!(outcome.executed, 1);
        assert!(!ckpt.exists(), "snapshot must be cleaned up");
        let straight = spec.execute().expect("straight run");
        assert_eq!(
            format!("{:?}", outcome.artifacts[0].summary),
            format!("{:?}", straight.summary),
            "resumed artifact must equal the uninterrupted one"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[ignore = "requires real serde_json; the offline stub serializes but cannot deserialize"]
    fn trace_roundtrip_via_cli() {
        let dir = std::env::temp_dir().join("ecocloud_cli_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("t.ecot");
        let gen = parse(&argv(&format!(
            "trace-gen --out {} --vms 5 --hours 1 --format binary",
            path.display()
        )))
        .expect("parses");
        execute(gen).expect("generates");
        let stats = parse(&argv(&format!("trace-stats {}", path.display()))).expect("parses");
        execute(stats).expect("reads");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
