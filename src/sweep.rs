//! Parallel multi-seed replication engine with a content-addressed
//! run cache.
//!
//! The paper's §V results are averages over repeated runs with
//! confidence intervals; this module industrializes that workflow:
//!
//! * [`RunSpec`] — a complete, hashable description of one simulation
//!   run: scenario dimensions, policy, fault and control-plane
//!   profiles, and the seed.
//! * [`ArtifactCache`] — a content-addressed artifact store under
//!   `out/cache/`, keyed by a stable FNV-1a hash of the canonical
//!   `RunSpec` string plus the crate version. A run whose artifact
//!   already exists is never executed again; bumping the crate version
//!   or changing any spec field changes the key, so invalidation is
//!   automatic instead of `rm out/cache_48h_*.json` by hand.
//! * [`run_grid`] — a work-stealing fan-out of a spec grid over std
//!   threads (via [`crate::parallel::run_replicas`]). Results are
//!   merged in **submission (seed) order, never completion order**, so
//!   the aggregate output is byte-identical for any worker count or
//!   schedule — the same discipline `detlint` enforces inside the
//!   simulator (DESIGN.md §12–13).
//! * [`aggregate`] — reduces the replicated [`RunArtifact`]s to
//!   mean / standard deviation / Student-t 95 % confidence intervals
//!   for every summary scalar and sampled time series
//!   (via [`ecocloud_metrics::replication`]).
//!
//! Artifacts use a self-describing plain-text codec (`.ecor`) whose
//! floats round-trip exactly (Rust's shortest-representation float
//! formatting), so a warm cache reproduces the cold-cache aggregate
//! byte-for-byte without any JSON machinery.
//!
//! # Worked example: a 3-seed ensemble, worker-count invariant
//!
//! ```
//! use ecocloud::sweep::{aggregate, run_grid, ArtifactCache, PolicySpec, RunSpec, ScenarioSpec};
//!
//! let scenario = ScenarioSpec::Custom {
//!     servers: 8,
//!     cores: None,
//!     vms: 30,
//!     hours: 1,
//!     migrations: true,
//!     server_utilization: false,
//!     churn: None,
//! };
//! let specs: Vec<RunSpec> = (0..3)
//!     .map(|seed| RunSpec::new(scenario.clone(), PolicySpec::EcoCloud, seed))
//!     .collect();
//!
//! // Same grid on one worker and on three: artifacts merge in
//! // submission (seed) order, so the aggregates are byte-identical.
//! let cache = ArtifactCache::disabled();
//! let serial = run_grid(&specs, 1, &cache).unwrap();
//! let fanned = run_grid(&specs, 3, &cache).unwrap();
//! let (a, b) = (aggregate(&serial.artifacts), aggregate(&fanned.artifacts));
//! assert_eq!(a.metrics_csv(), b.metrics_csv());
//! assert!(a.metric("energy_kwh").unwrap().mean() > 0.0);
//! ```

use crate::cli;
use crate::parallel::run_replicas;
use crate::scenarios::{ChurnKind, Scenario};
use dcsim::stats::SimSummary;
use dcsim::SimResult;
use ecocloud_metrics::replication::{EnsembleSeries, Replication};
use ecocloud_metrics::TimeSeries;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Scenario dimensions of a [`RunSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioSpec {
    /// The paper's §III setup: 400 thirds-mix servers, 6,000 VMs,
    /// 48 hours, migrations on, per-server utilization recorded.
    Paper48h,
    /// The paper's §IV assignment-only setup truncated to `hours`
    /// (18 for the full figure): 100 six-core servers, churned VMs,
    /// migrations off.
    PaperFig12 {
        /// Simulated hours (spawns past the horizon are dropped).
        hours: u64,
    },
    /// CLI-style custom dimensions (the `sweep` subcommand's surface).
    Custom {
        /// Number of servers (thirds mix unless `cores` is set).
        servers: usize,
        /// Uniform cores per server; `None` keeps the thirds mix.
        cores: Option<u32>,
        /// Number of VMs.
        vms: usize,
        /// Simulated hours.
        hours: u64,
        /// Whether the migration procedure is enabled.
        migrations: bool,
        /// Record the Fig. 6-style per-server utilization matrix
        /// (memory-heavy; off for sweeps).
        server_utilization: bool,
        /// Open-system churn: the workload kind and the churn share in
        /// integer percent (`None` keeps the closed-system workload).
        /// Integer percent rather than `f64` keeps the spec `Eq` and
        /// its canonical string exact.
        churn: Option<(ChurnKind, u8)>,
    },
}

impl ScenarioSpec {
    fn canonical(&self) -> String {
        match self {
            Self::Paper48h => "paper48h".to_string(),
            Self::PaperFig12 { hours } => format!("fig12(hours={hours})"),
            Self::Custom {
                servers,
                cores,
                vms,
                hours,
                migrations,
                server_utilization,
                churn,
            } => format!(
                "custom(servers={servers},cores={},vms={vms},hours={hours},migrations={},util={}{})",
                cores.map_or("thirds".to_string(), |c| c.to_string()),
                onoff(*migrations),
                onoff(*server_utilization),
                // Omitted entirely when off, so every closed-system
                // cache key (including the pinned one below) is
                // untouched by the open-system feature.
                churn.map_or(String::new(), |(kind, pct)| format!(
                    ",churn={},share={pct}",
                    kind.name()
                )),
            ),
        }
    }

    /// Builds the described scenario for `seed`.
    pub fn build(&self, seed: u64) -> Scenario {
        match self {
            Self::Paper48h => Scenario::paper_48h(seed),
            Self::PaperFig12 { hours } => {
                let mut s = Scenario::paper_fig12(seed);
                let horizon = (*hours * 3600) as f64;
                s.config.duration_secs = horizon;
                s.workload.spawns.retain(|sp| sp.arrive_secs <= horizon);
                s
            }
            Self::Custom {
                servers,
                cores,
                vms,
                hours,
                migrations,
                server_utilization,
                churn,
            } => {
                let args = cli::ScenarioArgs {
                    servers: *servers,
                    cores: *cores,
                    vms: *vms,
                    hours: *hours,
                    seed,
                };
                let mut s = match churn {
                    None => cli::build_scenario(&args, !*migrations, false),
                    Some((kind, pct)) => cli::build_scenario_open(
                        &args,
                        !*migrations,
                        false,
                        *kind,
                        f64::from(*pct) / 100.0,
                    ),
                };
                s.config.record_server_utilization = *server_utilization;
                s
            }
        }
    }
}

fn onoff(b: bool) -> &'static str {
    if b {
        "on"
    } else {
        "off"
    }
}

/// Placement policy of a [`RunSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicySpec {
    /// The paper's decentralized ecoCloud policy.
    EcoCloud,
    /// Centralized Best Fit with the double-threshold controller.
    BestFit,
    /// Centralized First Fit.
    FirstFit,
    /// Random placement below a utilization cap.
    Random,
}

impl PolicySpec {
    /// CLI name of the policy (also the canonical-string token).
    pub fn name(self) -> &'static str {
        match self {
            Self::EcoCloud => "ecocloud",
            Self::BestFit => "best-fit",
            Self::FirstFit => "first-fit",
            Self::Random => "random",
        }
    }

    /// Parses a CLI policy name.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "ecocloud" => Ok(Self::EcoCloud),
            "best-fit" => Ok(Self::BestFit),
            "first-fit" => Ok(Self::FirstFit),
            "random" => Ok(Self::Random),
            other => Err(format!(
                "unknown policy '{other}' (ecocloud|best-fit|first-fit|random)"
            )),
        }
    }
}

/// A complete, hashable description of one simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSpec {
    /// Scenario dimensions.
    pub scenario: ScenarioSpec,
    /// Placement policy.
    pub policy: PolicySpec,
    /// Fault profile name (`off`, `light`, `moderate`, `chaos`).
    pub faults: String,
    /// Control-plane profile name (`off`, `ideal`, `lan`, `lossy`).
    pub control_plane: String,
    /// Master seed of this replication.
    pub seed: u64,
}

impl RunSpec {
    /// A fault-free, atomic-placement spec (the common case).
    pub fn new(scenario: ScenarioSpec, policy: PolicySpec, seed: u64) -> Self {
        Self {
            scenario,
            policy,
            faults: "off".to_string(),
            control_plane: "off".to_string(),
            seed,
        }
    }

    /// The canonical string the cache key hashes: every field that can
    /// change a run's trajectory, plus the crate version (a simulator
    /// change is a cache invalidation).
    pub fn canonical(&self) -> String {
        // option_env rather than env: the offline test harness compiles
        // with bare rustc, where cargo's vars are absent. The fallback
        // must track the workspace version so both builds agree on keys.
        const CRATE_VERSION: &str = match option_env!("CARGO_PKG_VERSION") {
            Some(v) => v,
            None => "0.1.0",
        };
        format!(
            "ecocloud/{};scenario={};policy={};faults={};control={};seed={}",
            CRATE_VERSION,
            self.scenario.canonical(),
            self.policy.name(),
            self.faults,
            self.control_plane,
            self.seed,
        )
    }

    /// Stable 64-bit content key of this spec (FNV-1a over
    /// [`Self::canonical`]). Independent of the host, hasher seeds and
    /// rustc version — `std`'s `DefaultHasher` is explicitly *not*
    /// stable across releases, so the fold is spelled out here.
    pub fn cache_key(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        for b in self.canonical().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }

    /// Cache file name: human-readable prefix + content key.
    pub fn artifact_name(&self) -> String {
        format!(
            "{}-s{}-{:016x}.ecor",
            self.policy.name(),
            self.seed,
            self.cache_key()
        )
    }

    /// Executes the run (no cache involved) and reduces it to an
    /// artifact.
    pub fn execute(&self) -> Result<RunArtifact, String> {
        self.execute_with_checkpoints(None, None)
    }

    /// Executes the run, optionally resuming from / writing crash-safe
    /// snapshots at `ckpt_path` every `every_secs` of simulated time.
    /// A snapshot that cannot be restored (different crate version,
    /// different spec, damaged beyond the `.prev` fallback) is not
    /// fatal here — unlike the CLI's explicit `--resume`, the sweep
    /// engine falls back to a fresh run with a note on stderr, because
    /// the grid must converge even when snapshots rot.
    pub fn execute_with_checkpoints(
        &self,
        ckpt_path: Option<&Path>,
        every_secs: Option<f64>,
    ) -> Result<RunArtifact, String> {
        let mut scenario = self.scenario.build(self.seed);
        scenario.config.faults = cli::fault_profile(&self.faults, self.seed)?;
        scenario.config.control_plane = cli::control_plane_profile(&self.control_plane, self.seed)?;
        scenario.config.validate().map_err(|e| e.to_string())?;
        let hours = (scenario.config.duration_secs / 3600.0).ceil() as usize;
        let spec = self.canonical();
        let resume = ckpt_path.filter(|p| p.exists());
        let run = |resume: Option<&Path>| {
            cli::run_policy_checkpointed(
                &scenario,
                self.policy.name(),
                self.seed,
                &spec,
                every_secs,
                ckpt_path,
                resume,
            )
        };
        let mut result = match run(resume) {
            Ok(r) => r,
            Err(e) if resume.is_some() => {
                eprintln!("[sweep] {e}; restarting {} from scratch", self.artifact_name());
                run(None)?
            }
            Err(e) => return Err(e),
        };
        Ok(RunArtifact::from_result(self, hours, &mut result))
    }
}

/// The aggregation-relevant reduction of one run: the full
/// [`SimSummary`], the four sampled time series and the four hourly
/// counters. Everything the replication tables and the Fig. 6–11 CI
/// bands need — deliberately *not* the full `SimResult` (no per-server
/// matrix, no event log), so ten cached 48-hour replications cost
/// kilobytes, not megabytes.
#[derive(Debug, Clone)]
pub struct RunArtifact {
    /// Canonical spec string of the run that produced this artifact.
    pub spec: String,
    /// Content key ([`RunSpec::cache_key`]).
    pub key: u64,
    /// Powered servers at the end of the run.
    pub final_powered: u64,
    /// Headline scalars.
    pub summary: SimSummary,
    /// Sampled series: overall load, active servers, power, over-demand.
    pub series: Vec<TimeSeries>,
    /// Hourly counters: low/high migrations, activations, hibernations
    /// as `(name, counts-per-hour)`.
    pub hourly: Vec<(String, Vec<u64>)>,
}

/// Names of the four sampled series an artifact carries, in order.
pub const SERIES_NAMES: [&str; 4] = ["overall_load", "active_servers", "power_w", "overdemand_pct"];

/// Names of the four hourly counters an artifact carries, in order.
pub const HOURLY_NAMES: [&str; 4] = [
    "low_migrations",
    "high_migrations",
    "activations",
    "hibernations",
];

/// Lists every `SimSummary` field once; the artifact codec and the
/// aggregation layer are both generated from it, so a new summary
/// field shows up in cache files, CSVs and CI tables by being added
/// here (and the exhaustive struct literal in `parse_summary` breaks
/// the build if the list falls behind the struct).
macro_rules! for_each_summary_field {
    ($mac:ident) => {
        $mac!(
            f64: energy_kwh, mean_active_servers, max_power_w, placement_p99_secs,
                 violations_under_30s, mean_granted_during_violation, max_overdemand_pct,
                 max_ram_utilization;
            u64: total_low_migrations, total_high_migrations, total_activations,
                 total_hibernations, dropped_vms, migrations_started, migrations_completed,
                 migrations_aborted, server_crashes, server_repairs, wake_failures,
                 migration_failures, vms_displaced, vms_replaced, vms_lost, events_processed,
                 invitations_sent, invite_accepts, invite_declines, invite_losses,
                 invite_timeouts, commits_sent, commit_nacks, commit_losses,
                 exchanges_started, exchanges_committed, exchanges_abandoned,
                 exchanges_aborted, exchange_rebroadcasts, n_violations,
                 vms_arrived, vms_departed, vms_preempted
        )
    };
}

/// `(name, value-as-f64)` view of every [`SimSummary`] field, in the
/// fixed declaration order the aggregation tables use.
pub fn summary_metrics(s: &SimSummary) -> Vec<(&'static str, f64)> {
    macro_rules! collect {
        (f64: $($f:ident),*; u64: $($u:ident),*) => {
            vec![
                $((stringify!($f), s.$f),)*
                $((stringify!($u), s.$u as f64),)*
            ]
        };
    }
    for_each_summary_field!(collect)
}

fn parse_summary(fields: &[(String, f64)]) -> Result<SimSummary, String> {
    let get = |name: &str| -> Result<f64, String> {
        fields
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .ok_or_else(|| format!("artifact missing summary field '{name}'"))
    };
    macro_rules! build {
        (f64: $($f:ident),*; u64: $($u:ident),*) => {
            SimSummary {
                $($f: get(stringify!($f))?,)*
                $($u: get(stringify!($u))? as u64,)*
            }
        };
    }
    Ok(for_each_summary_field!(build))
}

impl RunArtifact {
    /// Reduces a finished run to its artifact.
    pub fn from_result(spec: &RunSpec, hours: usize, res: &mut SimResult) -> Self {
        let hours = hours.max(1);
        let series = vec![
            res.stats.overall_load.clone(),
            res.stats.active_servers.clone(),
            res.stats.power_w.clone(),
            res.stats.overdemand_pct.clone(),
        ];
        let counters = [
            &res.stats.low_migrations,
            &res.stats.high_migrations,
            &res.stats.activations,
            &res.stats.hibernations,
        ];
        let hourly = HOURLY_NAMES
            .iter()
            .zip(counters)
            .map(|(name, c)| {
                (
                    name.to_string(),
                    // `take(hours)` pins the vector length: an event
                    // landing exactly on the final boundary would
                    // otherwise give this seed one extra (empty-axis)
                    // hour and break cross-seed alignment.
                    c.per_hour(hours)
                        .into_iter()
                        .take(hours)
                        .map(|(_, n)| n)
                        .collect(),
                )
            })
            .collect();
        Self {
            spec: spec.canonical(),
            key: spec.cache_key(),
            final_powered: res.final_powered as u64,
            summary: res.summary.clone(),
            series,
            hourly,
        }
    }

    /// Serializes the artifact to the `.ecor` text format. Floats use
    /// Rust's shortest round-trip representation, so
    /// `from_text(to_text(a))` reproduces `a` bit-for-bit.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "ecocloud-run-artifact v1");
        let _ = writeln!(s, "spec {}", self.spec);
        let _ = writeln!(s, "key {:016x}", self.key);
        let _ = writeln!(s, "final_powered {}", self.final_powered);
        for (name, v) in summary_metrics(&self.summary) {
            let _ = writeln!(s, "summary {name} {v}");
        }
        for ts in &self.series {
            let _ = writeln!(s, "series {} {}", ts.name(), ts.len());
            for (&t, &v) in ts.times_secs().iter().zip(ts.values()) {
                let _ = writeln!(s, "{t} {v}");
            }
        }
        for (name, counts) in &self.hourly {
            let _ = write!(s, "hourly {name} {}", counts.len());
            for c in counts {
                let _ = write!(s, " {c}");
            }
            s.push('\n');
        }
        let _ = writeln!(s, "end");
        s
    }

    /// Parses the `.ecor` text format.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty artifact")?;
        if header != "ecocloud-run-artifact v1" {
            return Err(format!("unsupported artifact header '{header}'"));
        }
        let mut spec = None;
        let mut key = None;
        let mut final_powered = 0u64;
        let mut summary_fields: Vec<(String, f64)> = Vec::new();
        let mut series: Vec<TimeSeries> = Vec::new();
        let mut hourly: Vec<(String, Vec<u64>)> = Vec::new();
        let mut saw_end = false;
        while let Some(line) = lines.next() {
            let mut it = line.split_whitespace();
            match it.next() {
                Some("spec") => {
                    spec = Some(line["spec ".len()..].to_string());
                }
                Some("key") => {
                    let hex = it.next().ok_or("key line without value")?;
                    key = Some(
                        u64::from_str_radix(hex, 16).map_err(|e| format!("bad key '{hex}': {e}"))?,
                    );
                }
                Some("final_powered") => {
                    final_powered = parse_num(it.next(), "final_powered")?;
                }
                Some("summary") => {
                    let name = it.next().ok_or("summary line without name")?;
                    let v: f64 = parse_num(it.next(), name)?;
                    summary_fields.push((name.to_string(), v));
                }
                Some("series") => {
                    let name = it.next().ok_or("series line without name")?;
                    let n: usize = parse_num(it.next(), "series length")?;
                    let mut ts = TimeSeries::new(name);
                    for _ in 0..n {
                        let row = lines.next().ok_or("truncated series block")?;
                        let mut cols = row.split_whitespace();
                        let t: f64 = parse_num(cols.next(), "series time")?;
                        let v: f64 = parse_num(cols.next(), "series value")?;
                        ts.push(t, v);
                    }
                    series.push(ts);
                }
                Some("hourly") => {
                    let name = it.next().ok_or("hourly line without name")?;
                    let n: usize = parse_num(it.next(), "hourly length")?;
                    let counts: Vec<u64> = it
                        .map(|tok| tok.parse::<u64>().map_err(|e| format!("bad count: {e}")))
                        .collect::<Result<_, _>>()?;
                    if counts.len() != n {
                        return Err(format!(
                            "hourly '{name}': expected {n} counts, found {}",
                            counts.len()
                        ));
                    }
                    hourly.push((name.to_string(), counts));
                }
                Some("end") => {
                    saw_end = true;
                    break;
                }
                Some(other) => return Err(format!("unknown artifact record '{other}'")),
                None => {}
            }
        }
        if !saw_end {
            return Err("artifact missing 'end' marker (truncated write?)".to_string());
        }
        Ok(Self {
            spec: spec.ok_or("artifact missing spec line")?,
            key: key.ok_or("artifact missing key line")?,
            final_powered,
            summary: parse_summary(&summary_fields)?,
            series,
            hourly,
        })
    }

    /// The sampled series called `name`, if the artifact carries it.
    pub fn series(&self, name: &str) -> Option<&TimeSeries> {
        self.series.iter().find(|s| s.name() == name)
    }

    /// The hourly counts called `name`, if the artifact carries them.
    pub fn hourly(&self, name: &str) -> Option<&[u64]> {
        self.hourly
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c.as_slice())
    }
}

fn parse_num<T: std::str::FromStr>(tok: Option<&str>, what: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    let tok = tok.ok_or_else(|| format!("missing value for {what}"))?;
    tok.parse::<T>()
        .map_err(|e| format!("bad value '{tok}' for {what}: {e}"))
}

/// Content-addressed artifact store (one `.ecor` file per
/// [`RunSpec::cache_key`]).
#[derive(Debug, Clone)]
pub struct ArtifactCache {
    dir: Option<PathBuf>,
}

impl ArtifactCache {
    /// A cache rooted at `dir` (created on first store).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: Some(dir.into()),
        }
    }

    /// A disabled cache: every lookup misses, nothing is stored.
    pub fn disabled() -> Self {
        Self { dir: None }
    }

    /// The conventional location, `<out>/cache`.
    pub fn under_out_dir(out: &Path) -> Self {
        Self::new(out.join("cache"))
    }

    /// Whether this cache stores anything at all.
    pub fn is_enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// Path the artifact for `spec` lives at (None when disabled).
    pub fn path_for(&self, spec: &RunSpec) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(spec.artifact_name()))
    }

    /// Loads the cached artifact for `spec`, verifying that the stored
    /// canonical spec matches (a hash collision or a hand-edited file
    /// is treated as a miss, never silently served).
    pub fn load(&self, spec: &RunSpec) -> Option<RunArtifact> {
        let path = self.path_for(spec)?;
        let text = std::fs::read_to_string(&path).ok()?;
        match RunArtifact::from_text(&text) {
            Ok(a) if a.spec == spec.canonical() => Some(a),
            Ok(_) => {
                eprintln!(
                    "[sweep] cache file {} describes a different spec; ignoring",
                    path.display()
                );
                None
            }
            Err(e) => {
                eprintln!("[sweep] stale cache at {}: {e}; re-running", path.display());
                None
            }
        }
    }

    /// Stores an artifact under its spec's key. The write goes through
    /// a per-job temporary file and an atomic rename, so a concurrent
    /// reader never observes a torn artifact.
    pub fn store(&self, spec: &RunSpec, artifact: &RunArtifact, job: usize) -> Result<(), String> {
        let Some(path) = self.path_for(spec) else {
            return Ok(());
        };
        let dir = path.parent().expect("cache path has a parent");
        std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        let tmp = path.with_extension(format!("tmp{job}"));
        std::fs::write(&tmp, artifact.to_text())
            .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &path)
            .map_err(|e| format!("cannot rename into {}: {e}", path.display()))
    }
}

/// How a single run's artifact was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunProvenance {
    /// Served from the artifact cache without simulating.
    Cached,
    /// Simulated from the beginning.
    Simulated,
    /// Simulated, restarting from a crash-safe snapshot.
    Resumed,
}

/// Outcome of [`run_grid`]: artifacts in submission order plus cache
/// accounting.
#[derive(Debug)]
pub struct SweepOutcome {
    /// One artifact per spec, in the order the specs were given.
    pub artifacts: Vec<RunArtifact>,
    /// Runs served from the artifact cache.
    pub cache_hits: usize,
    /// Runs actually simulated.
    pub executed: usize,
    /// Executed runs that restarted from a crash-safe snapshot rather
    /// than from the beginning. Always `<= executed`.
    pub resumed: usize,
}

/// Runs every spec of the grid on up to `workers` threads, serving
/// warm runs from `cache` and storing cold ones into it.
///
/// Each run draws from its own seeded RNG streams (the seed is part of
/// the spec), and results are collected in submission order, so the
/// returned artifacts — and anything aggregated from them — are
/// byte-identical for 1, 2 or 8 workers. Progress ticks go to stderr.
///
/// # Errors
/// Returns the first error in spec order (an unknown profile name or
/// an unwritable cache directory), after all workers finished.
pub fn run_grid(
    specs: &[RunSpec],
    workers: usize,
    cache: &ArtifactCache,
) -> Result<SweepOutcome, String> {
    run_grid_with_checkpoints(specs, workers, cache, None)
}

/// [`run_grid`] with per-run crash-safe snapshots: every cold run
/// writes a checkpoint next to its cache artifact (same name, `.ckpt`
/// extension) every `every_secs` of simulated time, and an interrupted
/// grid resumes each unfinished run from its last good snapshot on the
/// next invocation. Snapshots are deleted once the run's artifact is
/// safely in the cache — a warm grid leaves no `.ckpt` files behind.
/// `every_secs: None` is plain [`run_grid`].
pub fn run_grid_with_checkpoints(
    specs: &[RunSpec],
    workers: usize,
    cache: &ArtifactCache,
    every_secs: Option<f64>,
) -> Result<SweepOutcome, String> {
    let done = AtomicUsize::new(0);
    let total = specs.len();
    let results: Vec<Result<(RunArtifact, RunProvenance), String>> =
        run_replicas(specs.len(), workers.max(1), |i| {
            let spec = &specs[i];
            // Snapshots only make sense with a cache directory to put
            // them in (and an artifact to declare the run finished).
            let ckpt = every_secs
                .and_then(|_| cache.path_for(spec))
                .map(|p| p.with_extension("ckpt"));
            let outcome = match cache.load(spec) {
                Some(artifact) => Ok((artifact, RunProvenance::Cached)),
                None => {
                    let provenance = if ckpt.as_deref().is_some_and(|p| p.exists()) {
                        RunProvenance::Resumed
                    } else {
                        RunProvenance::Simulated
                    };
                    spec.execute_with_checkpoints(ckpt.as_deref(), every_secs)
                        .and_then(|a| cache.store(spec, &a, i).map(|()| (a, provenance)))
                        .map(|r| {
                            // The artifact is durable; the snapshot
                            // (and its crash-safety siblings) served
                            // its purpose.
                            if let Some(p) = &ckpt {
                                for path in [
                                    p.clone(),
                                    PathBuf::from(format!("{}.prev", p.display())),
                                    PathBuf::from(format!("{}.tmp", p.display())),
                                ] {
                                    let _ = std::fs::remove_file(path);
                                }
                            }
                            r
                        })
                }
            };
            let n = done.fetch_add(1, Ordering::Relaxed) + 1;
            if let Ok((_, provenance)) = &outcome {
                eprintln!(
                    "[sweep] {n}/{total} {} {}",
                    spec.artifact_name(),
                    match provenance {
                        RunProvenance::Cached => "(cached)",
                        RunProvenance::Resumed => "(resumed)",
                        RunProvenance::Simulated => "(simulated)",
                    }
                );
            }
            outcome
        });
    let mut artifacts = Vec::with_capacity(total);
    let (mut cache_hits, mut executed, mut resumed) = (0, 0, 0);
    for r in results {
        let (artifact, provenance) = r?;
        match provenance {
            RunProvenance::Cached => cache_hits += 1,
            RunProvenance::Simulated => executed += 1,
            RunProvenance::Resumed => {
                executed += 1;
                resumed += 1;
            }
        }
        artifacts.push(artifact);
    }
    // Sweep cache conservation: every spec is served exactly once,
    // either from the cache or by simulating it, and a resumed run is
    // a special case of an executed one.
    debug_assert_eq!(
        cache_hits + executed,
        artifacts.len(),
        "a run was neither cached nor simulated"
    );
    debug_assert_eq!(artifacts.len(), total, "a spec produced no artifact");
    debug_assert!(resumed <= executed, "a cached run cannot resume a snapshot");
    Ok(SweepOutcome {
        executed,
        artifacts,
        cache_hits,
        resumed,
    })
}

/// Cross-replication statistics of a sweep: one [`Replication`] per
/// summary scalar (plus `final_powered`), one [`EnsembleSeries`] per
/// sampled series, and one `Replication` per (counter, hour) cell.
#[derive(Debug)]
pub struct SweepAggregate {
    /// `(metric name, cross-seed statistics)` in fixed field order.
    pub metrics: Vec<(&'static str, Replication)>,
    /// Point-wise ensembles of the four sampled series.
    pub series: Vec<EnsembleSeries>,
    /// Per-hour ensembles of the four hourly counters.
    pub hourly: Vec<(String, Vec<Replication>)>,
}

impl SweepAggregate {
    /// The aggregated metric called `name`.
    pub fn metric(&self, name: &str) -> Option<&Replication> {
        self.metrics
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, r)| r)
    }

    /// The series ensemble called `name`.
    pub fn series(&self, name: &str) -> Option<&EnsembleSeries> {
        self.series.iter().find(|e| e.name() == name)
    }

    /// The per-hour replications of the counter called `name`.
    pub fn hourly(&self, name: &str) -> Option<&[Replication]> {
        self.hourly
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, r)| r.as_slice())
    }

    /// `metric,mean,ci95,std_dev,min,max,n` CSV of every scalar.
    pub fn metrics_csv(&self) -> String {
        let mut s = String::from("metric,mean,ci95,std_dev,min,max,n\n");
        for (name, r) in &self.metrics {
            let _ = writeln!(
                s,
                "{name},{},{},{},{},{},{}",
                r.mean(),
                r.ci95_half_width(),
                r.std_dev(),
                r.min(),
                r.max(),
                r.count()
            );
        }
        s
    }
}

/// Reduces replicated artifacts (one per seed, same scenario) to
/// cross-seed statistics. Accumulation follows the artifact order, so
/// feed it [`run_grid`] output (submission order) for schedule-
/// independent results.
pub fn aggregate(artifacts: &[RunArtifact]) -> SweepAggregate {
    let mut metrics: Vec<(&'static str, Replication)> = Vec::new();
    for artifact in artifacts {
        let values = summary_metrics(&artifact.summary);
        if metrics.is_empty() {
            metrics = values
                .iter()
                .map(|&(name, _)| (name, Replication::new()))
                .collect();
            // Derived per-seed quantities. Summing must happen before
            // the cross-seed statistics: the CI of a sum is not the
            // sum of the CIs.
            metrics.push(("final_powered", Replication::new()));
            metrics.push(("total_migrations", Replication::new()));
            metrics.push(("total_switches", Replication::new()));
        }
        for ((_, r), (_, v)) in metrics.iter_mut().zip(&values) {
            r.push(*v);
        }
        let s = &artifact.summary;
        let derived = [
            ("final_powered", artifact.final_powered as f64),
            (
                "total_migrations",
                (s.total_low_migrations + s.total_high_migrations) as f64,
            ),
            (
                "total_switches",
                (s.total_activations + s.total_hibernations) as f64,
            ),
        ];
        for (name, v) in derived {
            metrics
                .iter_mut()
                .find(|(n, _)| *n == name)
                .expect("derived metric registered")
                .1
                .push(v);
        }
    }
    let mut series: Vec<EnsembleSeries> = SERIES_NAMES
        .iter()
        .map(|&n| EnsembleSeries::new(n))
        .collect();
    for artifact in artifacts {
        for (e, name) in series.iter_mut().zip(SERIES_NAMES) {
            if let Some(ts) = artifact.series(name) {
                e.push_series(ts);
            }
        }
    }
    let mut hourly: Vec<(String, Vec<Replication>)> = Vec::new();
    for name in HOURLY_NAMES {
        let mut cells: Vec<Replication> = Vec::new();
        for artifact in artifacts {
            if let Some(counts) = artifact.hourly(name) {
                if cells.is_empty() {
                    cells = vec![Replication::new(); counts.len()];
                }
                assert_eq!(
                    cells.len(),
                    counts.len(),
                    "hourly '{name}': replication length mismatch"
                );
                for (cell, &c) in cells.iter_mut().zip(counts) {
                    cell.push(c as f64);
                }
            }
        }
        hourly.push((name.to_string(), cells));
    }
    SweepAggregate {
        metrics,
        series,
        hourly,
    }
}

/// Builds the `seeds`-replication grid `base_seed .. base_seed+seeds`
/// of one scenario/policy combination.
pub fn seed_grid(
    scenario: &ScenarioSpec,
    policy: PolicySpec,
    base_seed: u64,
    seeds: usize,
) -> Vec<RunSpec> {
    (0..seeds as u64)
        .map(|i| RunSpec::new(scenario.clone(), policy, base_seed + i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tiny_scenario() -> ScenarioSpec {
        ScenarioSpec::Custom {
            servers: 6,
            cores: None,
            vms: 24,
            hours: 1,
            migrations: true,
            server_utilization: false,
            churn: None,
        }
    }

    fn tmp_cache(tag: &str) -> ArtifactCache {
        let dir = std::env::temp_dir().join(format!("ecocloud_sweep_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ArtifactCache::new(dir)
    }

    fn drop_cache(cache: &ArtifactCache) {
        if let Some(path) = cache.path_for(&RunSpec::new(tiny_scenario(), PolicySpec::EcoCloud, 0))
        {
            let _ = std::fs::remove_dir_all(path.parent().expect("cache dir"));
        }
    }

    #[test]
    fn canonical_string_and_hash_are_pinned() {
        // The cache key must never drift silently: a change to the
        // canonical encoding or the hash fold orphans every cached
        // artifact, so it has to be a visible, deliberate diff here.
        // (Bumping the workspace version in Cargo.toml re-pins both
        // lines — that is the intended invalidation lever.)
        let spec = RunSpec::new(tiny_scenario(), PolicySpec::EcoCloud, 42);
        assert_eq!(
            spec.canonical(),
            "ecocloud/0.1.0;scenario=custom(servers=6,cores=thirds,vms=24,hours=1,\
             migrations=on,util=off);policy=ecocloud;faults=off;control=off;seed=42"
        );
        assert_eq!(spec.cache_key(), 0x8b13_1df3_a19a_1575);
        assert_eq!(
            spec.artifact_name(),
            "ecocloud-s42-8b131df3a19a1575.ecor"
        );
    }

    #[test]
    fn churn_tokens_extend_the_canonical_string() {
        let spec = RunSpec::new(
            ScenarioSpec::Custom {
                servers: 6,
                cores: None,
                vms: 24,
                hours: 1,
                migrations: true,
                server_utilization: false,
                churn: Some((ChurnKind::Spot, 50)),
            },
            PolicySpec::EcoCloud,
            42,
        );
        assert!(
            spec.canonical().contains("util=off,churn=spot,share=50)"),
            "canonical: {}",
            spec.canonical()
        );
    }

    #[test]
    fn every_spec_field_changes_the_key() {
        let base = RunSpec::new(tiny_scenario(), PolicySpec::EcoCloud, 1);
        let mut variants = vec![base.clone()];
        variants.push(RunSpec {
            seed: 2,
            ..base.clone()
        });
        variants.push(RunSpec {
            policy: PolicySpec::BestFit,
            ..base.clone()
        });
        variants.push(RunSpec {
            faults: "chaos".to_string(),
            ..base.clone()
        });
        variants.push(RunSpec {
            control_plane: "lossy".to_string(),
            ..base.clone()
        });
        variants.push(RunSpec {
            scenario: ScenarioSpec::Paper48h,
            ..base.clone()
        });
        variants.push(RunSpec {
            scenario: ScenarioSpec::Custom {
                servers: 6,
                cores: None,
                vms: 24,
                hours: 1,
                migrations: true,
                server_utilization: false,
                churn: Some((ChurnKind::Steady, 50)),
            },
            ..base.clone()
        });
        variants.push(RunSpec {
            scenario: ScenarioSpec::Custom {
                servers: 6,
                cores: None,
                vms: 24,
                hours: 1,
                migrations: true,
                server_utilization: false,
                churn: Some((ChurnKind::Flash, 50)),
            },
            ..base.clone()
        });
        variants.push(RunSpec {
            scenario: ScenarioSpec::Custom {
                servers: 6,
                cores: None,
                vms: 24,
                hours: 1,
                migrations: true,
                server_utilization: false,
                churn: Some((ChurnKind::Steady, 75)),
            },
            ..base.clone()
        });
        let mut keys: Vec<u64> = variants.iter().map(RunSpec::cache_key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), variants.len(), "cache keys must all differ");
    }

    #[test]
    fn artifact_text_roundtrip_is_exact() {
        let spec = RunSpec::new(tiny_scenario(), PolicySpec::EcoCloud, 7);
        let artifact = spec.execute().expect("tiny run");
        let text = artifact.to_text();
        let parsed = RunArtifact::from_text(&text).expect("parses");
        // Bit-exactness shows as byte-equal re-serialization.
        assert_eq!(parsed.to_text(), text);
        assert_eq!(parsed.key, spec.cache_key());
        assert_eq!(parsed.summary.energy_kwh, artifact.summary.energy_kwh);
        assert_eq!(parsed.series.len(), 4);
        assert_eq!(parsed.hourly.len(), 4);
        assert_eq!(
            parsed.series("active_servers").expect("series").values(),
            artifact.series("active_servers").expect("series").values()
        );
    }

    #[test]
    fn artifact_parser_rejects_corruption() {
        let spec = RunSpec::new(tiny_scenario(), PolicySpec::FirstFit, 3);
        let artifact = spec.execute().expect("tiny run");
        let text = artifact.to_text();
        assert!(RunArtifact::from_text("").is_err());
        assert!(RunArtifact::from_text("wrong header\nend\n").is_err());
        // Truncation (a torn write) must be detected via the missing
        // end marker.
        let truncated = &text[..text.len() - 5];
        assert!(RunArtifact::from_text(truncated).is_err());
    }

    #[test]
    fn warm_cache_executes_zero_runs_and_reproduces_bytes() {
        let cache = tmp_cache("warm");
        let specs = seed_grid(&tiny_scenario(), PolicySpec::EcoCloud, 100, 3);
        let cold = run_grid(&specs, 2, &cache).expect("cold sweep");
        assert_eq!(cold.executed, 3);
        assert_eq!(cold.cache_hits, 0);
        assert_eq!(cold.resumed, 0, "no snapshots were requested");
        let warm = run_grid(&specs, 2, &cache).expect("warm sweep");
        assert_eq!(warm.executed, 0, "warm cache must execute zero runs");
        assert_eq!(warm.cache_hits, 3);
        assert_eq!(warm.resumed, 0);
        assert_eq!(
            aggregate(&warm.artifacts).metrics_csv(),
            aggregate(&cold.artifacts).metrics_csv(),
            "cache round-trip must not perturb the aggregate"
        );
        drop_cache(&cache);
    }

    #[test]
    fn aggregate_reports_cross_seed_statistics() {
        let specs = seed_grid(&tiny_scenario(), PolicySpec::EcoCloud, 10, 4);
        let outcome = run_grid(&specs, 4, &ArtifactCache::disabled()).expect("sweep");
        let agg = aggregate(&outcome.artifacts);
        let energy = agg.metric("energy_kwh").expect("energy metric");
        assert_eq!(energy.count(), 4);
        assert!(energy.mean() > 0.0);
        assert!(energy.ci95_half_width() >= 0.0);
        let active = agg.series("active_servers").expect("active ensemble");
        assert_eq!(active.replications(), 4);
        assert!(!active.times_secs().is_empty());
        let low = agg.hourly("low_migrations").expect("hourly cells");
        assert!(!low.is_empty());
        assert!(agg.metrics_csv().starts_with("metric,mean,ci95"));
        assert!(agg.metric("final_powered").is_some());
        let mig = agg.metric("total_migrations").expect("derived metric");
        assert_eq!(mig.count(), 4);
        assert!(agg.metric("total_switches").is_some());
    }

    proptest::proptest! {
        // The acceptance criterion of this engine: for any grid shape
        // and any worker count, the parallel sweep merges in seed
        // order and is byte-identical to the sequential one.
        #[test]
        fn prop_parallel_merge_equals_sequential(
            seeds in 1usize..4,
            workers in 2usize..9,
            servers in 4usize..9,
            vms in 8usize..28,
            base in 0u64..1000,
        ) {
            let scenario = ScenarioSpec::Custom {
                servers,
                cores: None,
                vms,
                hours: 1,
                migrations: true,
                server_utilization: false,
                churn: None,
            };
            let specs = seed_grid(&scenario, PolicySpec::EcoCloud, base, seeds);
            let cache = ArtifactCache::disabled();
            let sequential = run_grid(&specs, 1, &cache).expect("sequential");
            let parallel = run_grid(&specs, workers, &cache).expect("parallel");
            let seq_texts: Vec<String> =
                sequential.artifacts.iter().map(RunArtifact::to_text).collect();
            let par_texts: Vec<String> =
                parallel.artifacts.iter().map(RunArtifact::to_text).collect();
            prop_assert_eq!(seq_texts, par_texts);
            prop_assert_eq!(
                aggregate(&sequential.artifacts).metrics_csv(),
                aggregate(&parallel.artifacts).metrics_csv()
            );
        }
    }
}
