//! The `ecocloud-cli` binary — see [`ecocloud::cli`] for the command
//! set and the testable implementation.

use ecocloud::cli;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match cli::parse(&args) {
        Ok(cmd) => cmd,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{}", cli::USAGE);
            std::process::exit(2);
        }
    };
    if let Err(msg) = cli::execute(cmd) {
        eprintln!("error: {msg}");
        std::process::exit(1);
    }
}
