//! # ecoCloud — self-organizing energy saving for data centers
//!
//! A full reproduction of *"Analysis of a Self-Organizing Algorithm
//! for Energy Saving in Data Centers"* (C. Mastroianni, M. Meo,
//! G. Papuzzo — IPDPSW 2013): the decentralized, Bernoulli-trial-driven
//! ecoCloud VM-consolidation algorithm, the discrete-event data-center
//! simulator it is evaluated on, the fluid ODE model of its assignment
//! procedure, synthetic PlanetLab-style workload traces, and the
//! centralized baselines it is compared against.
//!
//! ## Quick start
//!
//! ```
//! use ecocloud::prelude::*;
//!
//! // A small data center driven by synthetic traces.
//! let scenario = Scenario::small(42);
//! let result = scenario.run(EcoCloudPolicy::paper(42));
//! assert!(result.summary.energy_kwh > 0.0);
//! // VMs end up consolidated on a fraction of the fleet.
//! assert!(result.final_powered < scenario.fleet.len());
//! ```
//!
//! See the `examples/` directory for end-to-end scenarios and the
//! `ecocloud-experiments` crate for the binaries regenerating every
//! figure of the paper.
//!
//! ## Layer map
//!
//! * [`scenarios`] — ready-made [`Scenario`] builders (the paper's
//!   §III/§IV setups, open-system churn variants, small smoke sizes).
//! * [`sweep`] — the multi-seed replication driver: a policy × seed
//!   grid on all cores with a content-addressed result cache.
//! * [`parallel`] — the deterministic replica pool [`sweep`] runs on
//!   (submission-order merge, scripted-scheduler audit seam).
//! * [`cli`] — the `ecocloud-cli` front end over all of the above.
//! * [`dcsim`] (re-export) — the simulator itself; see
//!   [`dcsim::shard`] for the deterministic parallel engine.
//!
//! The architecture overview lives in `ARCHITECTURE.md` at the
//! repository root.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod cli;
pub mod parallel;
pub mod scenarios;
pub mod sweep;

pub use scenarios::Scenario;

// Re-export the sub-crates under stable names.
pub use dcsim;
pub use ecocloud_analytic as analytic;
pub use ecocloud_baselines as baselines;
pub use ecocloud_core as core;
pub use ecocloud_metrics as metrics;
pub use ecocloud_traces as traces;

/// One-stop imports for applications.
pub mod prelude {
    pub use crate::scenarios::Scenario;
    pub use dcsim::{
        ControlPlaneConfig, FaultConfig, Fleet, InitialPlacement, PlaceOutcome, PlacementKind,
        PlacementRequest, Policy, SimConfig, SimResult, Simulation, Workload,
    };
    pub use ecocloud_baselines::{BestFitPolicy, FirstFitPolicy, RandomPolicy};
    pub use ecocloud_core::{
        AssignmentFunction, EcoCloudConfig, EcoCloudPolicy, MigrationFunctions,
    };
    pub use ecocloud_traces::{DiurnalEnvelope, TraceConfig, TraceSet};
}
