//! Parallel replica execution.
//!
//! Simulation runs are single-threaded and deterministic; statistical
//! work (replication studies, parameter sweeps, policy shoot-outs)
//! runs many of them. [`run_replicas`] fans a batch out over a scoped
//! worker pool (crossbeam scoped threads — no `'static` bounds on the
//! job closure) with a work-stealing index and a `parking_lot`-guarded
//! result sink, and returns results in submission order.

use crossbeam::thread;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Scheduling observation points inside [`run_replicas_gated`].
///
/// The pool has exactly two kinds of shared-state step per job: a
/// worker *claims* the next index from the work-stealing counter, and
/// later *writes* the finished result into the sink. A `Gate` is
/// called immediately before each step, which lets a test substitute a
/// scripted scheduler that blocks workers until a chosen global order
/// of steps is reached — `tests/scheduler_audit.rs` uses this to
/// exhaustively enumerate every claim/write interleaving of a small
/// batch and assert the submission-order merge is byte-identical under
/// all of them. Production code uses [`FreeRun`], whose empty hooks
/// inline to nothing.
pub trait Gate: Sync {
    /// Worker `worker` is about to claim the next job index (the claim
    /// may find the batch exhausted, which is the worker's exit path).
    fn before_claim(&self, worker: usize);
    /// Worker `worker` finished job `index` and is about to write its
    /// result into the shared sink.
    fn before_write(&self, worker: usize, index: usize);
}

/// The production scheduler: never blocks, adds no synchronization.
pub struct FreeRun;

impl Gate for FreeRun {
    fn before_claim(&self, _worker: usize) {}
    fn before_write(&self, _worker: usize, _index: usize) {}
}

/// Runs `jobs(i)` for `i in 0..n` on up to `workers` threads and
/// returns the results in index order.
///
/// The closure only needs to be `Sync` (it is shared by reference
/// across the scoped workers), so it can borrow scenario data from the
/// caller's stack — the reason this uses crossbeam's scope instead of
/// `std::thread::spawn`.
///
/// ```
/// let squares = ecocloud::parallel::run_replicas(8, 4, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn run_replicas<T, F>(n: usize, workers: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_replicas_gated(n, workers, &FreeRun, job)
}

/// [`run_replicas`] with an explicit [`Gate`] consulted before every
/// claim and write step. The scheduling seam for the concurrency
/// audit; semantics are identical to `run_replicas` for any gate that
/// eventually lets every worker proceed.
pub fn run_replicas_gated<T, F, G>(n: usize, workers: usize, gate: &G, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    G: Gate,
{
    assert!(workers > 0, "need at least one worker");
    if n == 0 {
        return Vec::new();
    }
    let next = AtomicUsize::new(0);
    let sink: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    let job = &job;
    thread::scope(|scope| {
        for w in 0..workers.min(n) {
            let (next, sink) = (&next, &sink);
            scope.spawn(move |_| loop {
                gate.before_claim(w);
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = job(i);
                gate.before_write(w, i);
                sink.lock()[i] = Some(result);
            });
        }
    })
    .expect("a replica worker panicked");
    sink.into_inner()
        .into_iter()
        .map(|r| r.expect("every index was filled"))
        .collect()
}

/// Convenience: one replica per seed, `seeds[i] = base + i`, using all
/// available parallelism.
pub fn run_seeds<T, F>(base_seed: u64, replicas: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    run_replicas(replicas, workers, |i| job(base_seed + i as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::Scenario;
    use ecocloud_core::EcoCloudPolicy;

    #[test]
    fn preserves_order_and_completeness() {
        let out = run_replicas(100, 7, |i| i * 3);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
    }

    #[test]
    fn works_with_one_worker_and_zero_jobs() {
        assert_eq!(run_replicas(3, 1, |i| i), vec![0, 1, 2]);
        assert!(run_replicas(0, 4, |i| i).is_empty());
    }

    #[test]
    fn borrows_caller_state() {
        // The job closure borrows non-'static data — the property
        // scoped threads buy us.
        let weights = [1.0f64, 2.0, 3.0];
        let out = run_replicas(3, 2, |i| weights[i] * 10.0);
        assert_eq!(out, vec![10.0, 20.0, 30.0]);
    }

    #[test]
    #[should_panic]
    fn propagates_worker_panics() {
        let _ = run_replicas(4, 2, |i| {
            if i == 2 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn parallel_simulations_match_sequential() {
        // Determinism survives the thread pool: each seed's result is
        // identical to running it alone.
        let results = run_seeds(11, 3, |seed| {
            let scenario = Scenario::small(seed);
            let res = scenario.run(EcoCloudPolicy::paper(seed));
            (res.summary.energy_kwh, res.final_powered)
        });
        for (i, &(kwh, powered)) in results.iter().enumerate() {
            let seed = 11 + i as u64;
            let lone = Scenario::small(seed).run(EcoCloudPolicy::paper(seed));
            assert_eq!(kwh, lone.summary.energy_kwh, "seed {seed}");
            assert_eq!(powered, lone.final_powered, "seed {seed}");
        }
    }
}
